"""Compute-dtype policy for the autograd engine.

Everything numeric in ``repro.nn`` used to hardcode ``np.float64``. This
module replaces those literals with one **policy**: a per-thread active
compute dtype that :class:`~repro.nn.tensor.Tensor` construction, the
functional ops, the segment kernels, and every layer consult when they
allocate a float array. The default is float64 and the default path is
bit-identical to the pre-policy engine; float32 is opt-in::

    with compute_dtype("float32"):
        out = model(Tensor(x), edge_index)

Two distinct needs, two distinct spellings:

* :func:`get_compute_dtype` / :func:`compute_dtype` — *policy-following*
  code: tape allocations, one-hot features, batch collation, layer
  scratch. These narrow to float32 when the policy says so.
* :data:`FLOAT64` — *policy-exempt* code: evaluation metrics, the GP
  tuner, heuristic scores, gradient reduction. These stay double no
  matter the policy; using the named constant (instead of a raw
  ``np.float64`` literal) is what ``scripts/check_dtype_policy.py``
  keys on to tell "deliberately pinned" from "forgot the policy".

The policy is thread-local so a scoring thread can run float32 without
perturbing a training thread; new threads start at the float64 default.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Union

import numpy as np

__all__ = [
    "FLOAT32",
    "FLOAT64",
    "DEFAULT_DTYPE",
    "SUPPORTED",
    "resolve_dtype",
    "get_compute_dtype",
    "set_compute_dtype",
    "compute_dtype",
    "coerce",
    "cast_module",
]

#: Pinned double precision — the spelling policy-exempt modules use.
FLOAT64 = np.dtype("float64")
#: Reduced precision for the opt-in mixed-precision path.
FLOAT32 = np.dtype("float32")
#: What the engine runs at when nobody asks for anything else.
DEFAULT_DTYPE = FLOAT64
#: The only dtypes the tape supports as compute dtypes.
SUPPORTED = (FLOAT32, FLOAT64)

DtypeLike = Union[str, np.dtype, type]

_state = threading.local()


def resolve_dtype(spec: DtypeLike) -> np.dtype:
    """Normalize ``spec`` to one of the supported compute dtypes.

    Accepts ``"float32"``/``"float64"``, numpy dtypes, or scalar types;
    raises ``ValueError`` for anything the tape cannot run at (halves,
    ints, complex).
    """
    dt = np.dtype(spec)
    if dt not in SUPPORTED:
        names = ", ".join(d.name for d in SUPPORTED)
        raise ValueError(f"unsupported compute dtype {dt.name!r}; expected one of: {names}")
    return dt


def get_compute_dtype() -> np.dtype:
    """The active compute dtype for this thread (float64 unless set)."""
    return getattr(_state, "dtype", DEFAULT_DTYPE)


def set_compute_dtype(spec: DtypeLike) -> np.dtype:
    """Set the active compute dtype; returns the previous one."""
    previous = get_compute_dtype()
    _state.dtype = resolve_dtype(spec)
    return previous


@contextmanager
def compute_dtype(spec: DtypeLike) -> Iterator[np.dtype]:
    """Scoped policy: run the body with ``spec`` as the compute dtype."""
    previous = set_compute_dtype(spec)
    try:
        yield get_compute_dtype()
    finally:
        _state.dtype = previous


def coerce(arr: np.ndarray) -> np.ndarray:
    """Cast a float array to the active compute dtype (ints pass through)."""
    if arr.dtype.kind == "f" and arr.dtype != get_compute_dtype():
        return arr.astype(get_compute_dtype())
    return arr


def cast_module(module, spec: DtypeLike):
    """Cast every float parameter of ``module`` in place to ``spec``.

    Grad buffers are dropped (they belong to the old dtype). Returns the
    module so call sites can chain. The optimizer keeps float64 master
    copies independently — see :class:`repro.nn.optim.Adam`.
    """
    dt = resolve_dtype(spec)
    for _, p in module.named_parameters():
        if p.data.dtype.kind == "f" and p.data.dtype != dt:
            p.data = p.data.astype(dt)
            p.grad = None
    return module
