"""Reverse-mode automatic differentiation on NumPy arrays.

This is the tensor backend substituting for PyTorch in the reproduction
(the build environment has no GPU frameworks). It implements a classic
tape-based design:

* :class:`Tensor` wraps a float ndarray in the active compute dtype from
  :mod:`repro.nn.dtype` (float64 by default; integer arrays, for indices,
  are kept as-is).
* Every differentiable operation records its parent tensors and one
  vector-Jacobian-product (VJP) closure per parent.
* :meth:`Tensor.backward` topologically sorts the tape and accumulates
  gradients, exactly like ``torch.autograd``.

Only operations needed by the AM-DGCNN stack are provided, but each is a
general ndarray op with full broadcasting support; gradients for every op
are verified against finite differences in ``tests/nn/``.

Design notes (per the HPC-Python guides): all VJPs are vectorized — no
Python loops over elements — and reuse ``np.add.at`` / fancy indexing for
scatter-style backward passes.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn import workspace as _ws
from repro.nn.dtype import coerce as _coerce_dtype, get_compute_dtype

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape recording (evaluation mode).

    >>> with no_grad():
    ...     y = Tensor([1.0], requires_grad=True) * 2.0
    >>> y.requires_grad
    False
    """
    global _grad_enabled
    prev = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = prev


def is_grad_enabled() -> bool:
    """Whether operations currently record onto the autograd tape."""
    return _grad_enabled


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast axes.

    NumPy broadcasting aligns trailing axes; the gradient of a broadcast
    operand is the upstream gradient summed over every axis that was
    expanded (both prepended axes and size-1 axes).
    """
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to an ndarray. Floating-point inputs are cast
        to the active compute dtype (``float64`` unless a
        :func:`repro.nn.dtype.compute_dtype` policy narrows it); integer and
        bool arrays are kept as-is (useful for indices) but cannot require
        gradients.
    requires_grad:
        Whether to build a tape through this tensor.

    Examples
    --------
    >>> x = Tensor([[1.0, 2.0]], requires_grad=True)
    >>> y = (x * x).sum()
    >>> y.backward()
    >>> x.grad.tolist()
    [[2.0, 4.0]]
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_vjps", "_op")

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype.kind == "f":
            arr = _coerce_dtype(arr)
        elif arr.dtype.kind not in "iub":
            arr = arr.astype(get_compute_dtype())
        if requires_grad and arr.dtype.kind != "f":
            raise TypeError("only floating tensors can require gradients")
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad and _grad_enabled)
        self._parents: Tuple[Tensor, ...] = ()
        self._vjps: Tuple[Optional[Callable[[np.ndarray], np.ndarray]], ...] = ()
        self._op: str = "leaf"

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _from_op(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        vjps: Sequence[Optional[Callable[[np.ndarray], np.ndarray]]],
        op: str,
    ) -> "Tensor":
        """Build a tape node. VJP ``i`` maps upstream grad → grad wrt parent ``i``."""
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._parents = tuple(parents)
            out._vjps = tuple(vjps)
            out._op = op
        return out

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """The underlying ndarray (no copy). Mutating it bypasses the tape."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """A new leaf tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # backward
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        ``grad`` defaults to ones (scalar outputs usually call it bare).
        Gradients accumulate into ``.grad`` of every reachable leaf/interior
        tensor with ``requires_grad=True``.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        # Topological order via iterative DFS (avoids recursion limits on
        # deep tapes, e.g. many-layer unrolled models).
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in visited:
                    stack.append((p, False))

        # Gradient-buffer donation: interior grads live exactly until every
        # consumer VJP has run, so a retired buffer can be recycled for the
        # next same-shaped gradient instead of hitting the allocator. The
        # arena only ever pools buffers it allocated itself, and a buffer
        # survives if a VJP returned a view of it (alias escapes the tape)
        # or it became a leaf ``.grad`` (ownership moves to the caller).
        # In-place accumulation computes the same ``prev + contrib`` values,
        # so the pass stays bit-identical with the arena on or off.
        arena = _ws.open_arena()
        try:
            grads: dict[int, np.ndarray] = {id(self): grad}
            for node in reversed(topo):
                g = grads.pop(id(node), None)
                if g is None:
                    continue
                if node._parents:
                    g_escaped = False
                    for parent, vjp in zip(node._parents, node._vjps):
                        if vjp is None or not parent.requires_grad:
                            continue
                        contrib = vjp(g)
                        if contrib is g or contrib.base is g:
                            g_escaped = True
                        key = id(parent)
                        prev = grads.get(key)
                        if prev is None:
                            grads[key] = contrib
                            continue
                        mergeable = prev.shape == contrib.shape and prev.dtype == contrib.dtype
                        if arena is not None and mergeable and arena.owns(prev) and prev is not g:
                            np.add(prev, contrib, out=prev)
                            if contrib is not g:
                                arena.retire(contrib)
                        elif arena is not None and mergeable:
                            acc = arena.alloc(prev.shape, prev.dtype)
                            np.add(prev, contrib, out=acc)
                            grads[key] = acc
                            if prev is not g:
                                arena.retire(prev)
                            if contrib is not g:
                                arena.retire(contrib)
                        else:
                            grads[key] = prev + contrib
                    if arena is not None:
                        if g_escaped:
                            arena.disown(g)
                        else:
                            arena.retire(g)
                elif node.grad is None:
                    node.grad = g
                    if arena is not None:
                        arena.disown(g)
                else:
                    node.grad = node.grad + g
                    if arena is not None:
                        arena.retire(g)
        finally:
            _ws.close_arena(arena)
        # Interior tensors that were targets of retained grads:
        # (we only keep leaf grads, matching torch defaults)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out = self.data + other.data
        return Tensor._from_op(
            out,
            (self, other),
            (
                lambda g, s=self.data.shape: _unbroadcast(g, s),
                lambda g, s=other.data.shape: _unbroadcast(g, s),
            ),
            "add",
        )

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out = self.data - other.data
        return Tensor._from_op(
            out,
            (self, other),
            (
                lambda g, s=self.data.shape: _unbroadcast(g, s),
                lambda g, s=other.data.shape: _unbroadcast(-g, s),
            ),
            "sub",
        )

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out = self.data * other.data
        a, b = self.data, other.data
        return Tensor._from_op(
            out,
            (self, other),
            (
                lambda g: _unbroadcast(g * b, a.shape),
                lambda g: _unbroadcast(g * a, b.shape),
            ),
            "mul",
        )

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data
        out = a / b
        return Tensor._from_op(
            out,
            (self, other),
            (
                lambda g: _unbroadcast(g / b, a.shape),
                lambda g: _unbroadcast(-g * a / (b * b), b.shape),
            ),
            "div",
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return Tensor._from_op(-self.data, (self,), (lambda g: -g,), "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        a = self.data
        out = a**exponent
        return Tensor._from_op(
            out,
            (self,),
            (lambda g: g * exponent * a ** (exponent - 1),),
            "pow",
        )

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data
        out = a @ b
        if a.ndim == 2 and b.ndim == 2:
            vjps = (lambda g: g @ b.T, lambda g: a.T @ g)
        elif a.ndim == 1 and b.ndim == 2:
            vjps = (lambda g: g @ b.T, lambda g: np.outer(a, g))
        elif a.ndim == 2 and b.ndim == 1:
            vjps = (lambda g: np.outer(g, b), lambda g: a.T @ g)
        elif a.ndim == 1 and b.ndim == 1:
            vjps = (lambda g: g * b, lambda g: g * a)
        else:
            # Batched matmul: contract over trailing dims, unbroadcast batch.
            vjps = (
                lambda g: _unbroadcast(g @ np.swapaxes(b, -1, -2), a.shape),
                lambda g: _unbroadcast(np.swapaxes(a, -1, -2) @ g, b.shape),
            )
        return Tensor._from_op(out, (self, other), vjps, "matmul")

    # ------------------------------------------------------------------ #
    # elementwise math
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out = np.exp(self.data)
        return Tensor._from_op(out, (self,), (lambda g: g * out,), "exp")

    def log(self) -> "Tensor":
        a = self.data
        return Tensor._from_op(np.log(a), (self,), (lambda g: g / a,), "log")

    def sqrt(self) -> "Tensor":
        out = np.sqrt(self.data)
        return Tensor._from_op(out, (self,), (lambda g: g / (2.0 * out),), "sqrt")

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)
        return Tensor._from_op(out, (self,), (lambda g: g * (1.0 - out * out),), "tanh")

    def sigmoid(self) -> "Tensor":
        out = 1.0 / (1.0 + np.exp(-self.data))
        return Tensor._from_op(out, (self,), (lambda g: g * out * (1.0 - out),), "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return Tensor._from_op(self.data * mask, (self,), (lambda g: g * mask,), "relu")

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        a = self.data
        mask = a > 0
        out = np.where(mask, a, negative_slope * a)
        # np.where(mask, g, g * slope) rather than g * np.where(mask, 1, slope):
        # identical floats (x * 1.0 == x), but the scalar operand stays weak
        # so a float32 gradient is not promoted to float64.
        return Tensor._from_op(
            out,
            (self,),
            (lambda g: np.where(mask, g, g * negative_slope),),
            "leaky_relu",
        )

    def abs(self) -> "Tensor":
        a = self.data
        return Tensor._from_op(np.abs(a), (self,), (lambda g: g * np.sign(a),), "abs")

    def clip(self, low: float, high: float) -> "Tensor":
        a = self.data
        mask = (a >= low) & (a <= high)
        return Tensor._from_op(np.clip(a, low, high), (self,), (lambda g: g * mask,), "clip")

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def vjp(g: np.ndarray) -> np.ndarray:
            if axis is None:
                return np.broadcast_to(g, shape).copy() if np.ndim(g) == 0 else np.full(shape, g)
            g_exp = g if keepdims else np.expand_dims(g, axis)
            return np.broadcast_to(g_exp, shape).copy()

        return Tensor._from_op(out, (self,), (vjp,), "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        n = self.data.size if axis is None else np.prod(
            [self.data.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(n))

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self.data.max(axis=axis, keepdims=keepdims)
        a = self.data

        def vjp(g: np.ndarray) -> np.ndarray:
            if axis is None:
                mask = a == a.max()
                return (g * mask / mask.sum()).astype(a.dtype)
            out_keep = a.max(axis=axis, keepdims=True)
            mask = a == out_keep
            # int64 counts would promote a float32 gradient to float64.
            counts = mask.sum(axis=axis, keepdims=True).astype(a.dtype)
            g_exp = g if keepdims else np.expand_dims(g, axis)
            return mask * (g_exp / counts)

        return Tensor._from_op(out, (self,), (vjp,), "max")

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------ #
    # shape ops
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old = self.data.shape
        out = self.data.reshape(shape)
        return Tensor._from_op(out, (self,), (lambda g: g.reshape(old),), "reshape")

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        out = np.transpose(self.data, axes)
        if axes is None:
            inv = None
        else:
            inv = np.argsort(axes)
        return Tensor._from_op(out, (self,), (lambda g: np.transpose(g, inv),), "transpose")

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        old = self.data.shape
        out = np.squeeze(self.data, axis=axis)
        return Tensor._from_op(out, (self,), (lambda g: g.reshape(old),), "squeeze")

    def expand_dims(self, axis: int) -> "Tensor":
        old = self.data.shape
        out = np.expand_dims(self.data, axis)
        return Tensor._from_op(out, (self,), (lambda g: g.reshape(old),), "expand_dims")

    def __getitem__(self, idx) -> "Tensor":
        out = self.data[idx]
        shape = self.data.shape

        def vjp(g: np.ndarray) -> np.ndarray:
            full = _ws.grad_buffer(shape, g.dtype, zero=True)
            np.add.at(full, idx, g)
            return full

        return Tensor._from_op(out, (self,), (vjp,), "getitem")

    # ------------------------------------------------------------------ #
    # comparisons (non-differentiable, return ndarray masks)
    # ------------------------------------------------------------------ #
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > as_tensor(other).data

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < as_tensor(other).data

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= as_tensor(other).data

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= as_tensor(other).data


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``.

    Gradient splits the upstream gradient back into the operand slots.
    """
    tensors = [as_tensor(t) for t in tensors]
    datas = [t.data for t in tensors]
    out = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def make_vjp(i: int) -> Callable[[np.ndarray], np.ndarray]:
        def vjp(g: np.ndarray) -> np.ndarray:
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            return g[tuple(slicer)]

        return vjp

    return Tensor._from_op(out, tensors, [make_vjp(i) for i in range(len(tensors))], "concat")


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new axis."""
    tensors = [as_tensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)

    def make_vjp(i: int) -> Callable[[np.ndarray], np.ndarray]:
        def vjp(g: np.ndarray) -> np.ndarray:
            return np.take(g, i, axis=axis)

        return vjp

    return Tensor._from_op(out, tensors, [make_vjp(i) for i in range(len(tensors))], "stack")


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Differentiable ``np.where`` with a boolean ndarray condition."""
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out = np.where(cond, a.data, b.data)
    return Tensor._from_op(
        out,
        (a, b),
        (
            lambda g: _unbroadcast(g * cond, a.data.shape),
            lambda g: _unbroadcast(g * ~cond, b.data.shape),
        ),
        "where",
    )
