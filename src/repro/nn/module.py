"""Module/Parameter system: a small mirror of ``torch.nn.Module``.

Modules register :class:`Parameter` attributes and child modules
automatically through ``__setattr__``; ``parameters()`` walks the tree,
``state_dict``/``load_state_dict`` snapshot weights, and ``train``/``eval``
toggle mode flags consumed by dropout layers.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A Tensor flagged as trainable (always ``requires_grad=True``)."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter(shape={self.shape})"


class Module:
    """Base class for layers and models.

    Subclasses define parameters/children in ``__init__`` and implement
    ``forward``. Calling the module invokes ``forward``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- registration -------------------------------------------------- #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Optional[Parameter]) -> None:
        """Explicit registration (used when params live in containers)."""
        if param is not None:
            self._parameters[name] = param
        object.__setattr__(self, name, param)

    # -- traversal ------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` over the whole subtree."""
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for name, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """All parameters in the subtree, in registration order."""
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants depth-first."""
        yield self
        for mod in self._modules.values():
            yield from mod.modules()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return int(sum(p.size for p in self.parameters()))

    # -- mode ------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        for mod in self.modules():
            object.__setattr__(mod, "training", mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # -- gradients -------------------------------------------------------- #
    def zero_grad(self) -> None:
        """Clear ``.grad`` on every parameter."""
        for p in self.parameters():
            p.grad = None

    # -- state ------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter's data keyed by dotted path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, p in own.items():
            # Load into the parameter's current dtype: a float32 working
            # model stays float32 when fed a float64 checkpoint and vice
            # versa (the compute-dtype policy owns what the model runs at).
            arr = np.asarray(state[name], dtype=p.data.dtype)
            if arr.shape != p.data.shape:
                raise ValueError(f"shape mismatch for {name}: {arr.shape} vs {p.data.shape}")
            p.data = arr.copy() if arr is state[name] else arr

    # -- call --------------------------------------------------------------- #
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """An indexable container of submodules (registered for traversal)."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for mod in modules or []:
            self.append(mod)

    def append(self, module: Module) -> "ModuleList":
        self._modules[str(len(self._items))] = module
        self._items.append(module)
        return self

    def __getitem__(self, idx: int) -> Module:
        return self._items[idx]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def forward(self, *args, **kwargs):  # pragma: no cover
        raise RuntimeError("ModuleList is a container; call its items")


class Sequential(Module):
    """Apply modules in order: ``Sequential(a, b)(x) == b(a(x))``."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items: List[Module] = []
        for mod in modules:
            self._modules[str(len(self._items))] = mod
            self._items.append(mod)

    def forward(self, x):
        for mod in self._items:
            x = mod(x)
        return x

    def __getitem__(self, idx: int) -> Module:
        return self._items[idx]

    def __len__(self) -> int:
        return len(self._items)
