"""Optimizers and learning-rate schedules.

Adam is the paper's (implicit) optimizer — the SEAL reference
implementation trains DGCNN with Adam — and is the default throughout the
reproduction. SGD with momentum is kept as a baseline, and AdamW gives
decoupled weight decay for the dense heads.

All updates are in-place on ``Parameter.data`` and fully vectorized.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "StepLR", "clip_grad_norm"]


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.params:
            if p.grad is None:
                continue
            g = p.grad
            if self.momentum > 0:
                v = self._velocity.get(id(p))
                v = self.momentum * v + g if v is not None else g.copy()
                self._velocity[id(p)] = v
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        if not (0 <= self.beta1 < 1 and 0 <= self.beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1**self._t
        bc2 = 1.0 - b2**self._t
        for p in self.params:
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data  # coupled L2 (classic Adam)
            m = self._m.get(id(p))
            v = self._v.get(id(p))
            m = b1 * m + (1 - b1) * g if m is not None else (1 - b1) * g
            v = b2 * v + (1 - b2) * (g * g) if v is not None else (1 - b2) * (g * g)
            self._m[id(p)], self._v[id(p)] = m, v
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def step(self) -> None:
        if self.weight_decay:
            for p in self.params:
                if p.grad is not None:
                    p.data -= self.lr * self.weight_decay * p.data
        wd, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = wd


class StepLR:
    """Multiply the optimizer's lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch; decays lr on multiples of ``step_size``."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma

    @property
    def last_lr(self) -> float:
        return self.optimizer.lr


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging exploding gradients).
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
