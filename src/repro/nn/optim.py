"""Optimizers and learning-rate schedules.

Adam is the paper's (implicit) optimizer — the SEAL reference
implementation trains DGCNN with Adam — and is the default throughout the
reproduction. SGD with momentum is kept as a baseline, and AdamW gives
decoupled weight decay for the dense heads.

All updates are in-place on ``Parameter.data`` and fully vectorized.

**Mixed precision.** When a parameter runs reduced (``float32`` working
copies under a :func:`repro.nn.dtype.compute_dtype` policy), Adam/AdamW
keep a ``float64`` *master* copy per parameter in the state slots — the
NumPy analog of AMP master weights. Gradients are upcast to float64,
moments and the update run entirely in float64 against the master, and
the parameter receives a fresh reduced-precision cast of the master each
step. Masters serialize with the rest of the state, so checkpoints
round-trip the full-precision weights losslessly;
:meth:`Optimizer.sync_master_params` restores them into the model after
training. Float64 parameters take the exact pre-policy update path.

Per-parameter optimizer state (momentum velocities, Adam moments) is
keyed by *parameter name*, not ``id(p)``: id keys cannot be serialized
into a checkpoint, and a dict entry for a garbage-collected parameter
could silently be adopted by a new parameter allocated at the recycled
address. Pass ``model.named_parameters()`` to key state by dotted path
(the stable spelling checkpoints use); plain parameter iterables get
positional names ``"p0"``, ``"p1"``, ... ``state_dict`` /
``load_state_dict`` round-trip the full update state bit-exactly, so a
resumed run steps identically to an uninterrupted one.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Tuple, Union

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "StepLR", "clip_grad_norm"]

ParamsLike = Iterable[Union[Parameter, Tuple[str, Parameter]]]


class Optimizer:
    """Base optimizer over a list of (optionally named) parameters.

    ``params`` accepts either plain :class:`Parameter` objects or
    ``(name, parameter)`` pairs such as ``model.named_parameters()``.
    Names key the per-parameter state and must be unique.
    """

    def __init__(self, params: ParamsLike, lr: float):
        self.params: List[Parameter] = []
        self._names: List[str] = []
        for item in params:
            if isinstance(item, tuple):
                name, p = item
                name = str(name)
            else:
                name, p = f"p{len(self.params)}", item
            if name in self._names:
                raise ValueError(f"duplicate parameter name {name!r}")
            self._names.append(name)
            self.params.append(p)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)
        #: name → slot dict (e.g. ``{"m": ..., "v": ...}``), lazily filled.
        self.state: Dict[str, Dict[str, np.ndarray]] = {}

    def _named(self) -> Iterator[Tuple[str, Parameter]]:
        """``(name, parameter)`` pairs; appended params get fresh names."""
        while len(self._names) < len(self.params):
            i = len(self._names)
            name = f"p{i}"
            while name in self._names:
                i += 1
                name = f"p{i}"
            self._names.append(name)
        return zip(self._names, self.params)

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.grad = None

    # -- serialization ------------------------------------------------- #
    def _hyper(self) -> Dict[str, Any]:
        """Scalar update-rule state beyond ``lr`` (subclasses extend)."""
        return {}

    def _load_hyper(self, hyper: Dict[str, Any]) -> None:
        pass

    def state_dict(self) -> Dict[str, Any]:
        """Serializable snapshot: lr, scalar hyper-state, per-name slots.

        Arrays are copied, so the snapshot is immune to later steps.
        """
        return {
            "lr": self.lr,
            "hyper": self._hyper(),
            "state": {
                name: {k: np.asarray(v).copy() for k, v in slots.items()}
                for name, slots in self.state.items()
            },
        }

    def load_state_dict(self, sd: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot (names must match)."""
        own = {name for name, _ in self._named()}
        unknown = set(sd["state"]) - own
        if unknown:
            raise KeyError(f"optimizer state for unknown parameters: {sorted(unknown)}")
        self.lr = float(sd["lr"])
        self._load_hyper(dict(sd.get("hyper", {})))
        self.state = {
            name: {k: np.asarray(v, dtype=np.float64).copy() for k, v in slots.items()}
            for name, slots in sd["state"].items()
        }

    def _master(self, name: str, p: Parameter) -> np.ndarray:
        """The float64 master copy for a reduced-precision parameter.

        Created lazily from the current working copy the first time a
        reduced parameter steps (or decays), then owned by the state
        dict so checkpoints carry it.
        """
        slots = self.state.setdefault(name, {})
        master = slots.get("master")
        if master is None:
            master = slots["master"] = p.data.astype(np.float64)
        return master

    def sync_master_params(self) -> int:
        """Push float64 master weights back into their parameters.

        After mixed-precision training (or after loading a checkpoint
        taken mid-run) this restores each parameter from its lossless
        master — cast down if the parameter still runs reduced, copied
        bit-exactly if it is float64 again. Returns how many parameters
        were synced; float64-only runs have no masters and return 0.
        """
        synced = 0
        for name, p in self._named():
            master = self.state.get(name, {}).get("master")
            if master is None:
                continue
            if p.data.dtype == np.float64:
                p.data = master.copy()
            else:
                p.data = master.astype(p.data.dtype)
            synced += 1
        return synced

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params: ParamsLike, lr: float = 0.01, momentum: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum

    def step(self) -> None:
        for name, p in self._named():
            if p.grad is None:
                continue
            g = p.grad
            if self.momentum > 0:
                slots = self.state.setdefault(name, {})
                v = slots.get("velocity")
                v = self.momentum * v + g if v is not None else g.copy()
                slots["velocity"] = v
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: ParamsLike,
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        if not (0 <= self.beta1 < 1 and 0 <= self.beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.eps = eps
        self.weight_decay = weight_decay
        self._t = 0

    def _hyper(self) -> Dict[str, Any]:
        return {"t": self._t}

    def _load_hyper(self, hyper: Dict[str, Any]) -> None:
        self._t = int(hyper.get("t", 0))

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1**self._t
        bc2 = 1.0 - b2**self._t
        for name, p in self._named():
            if p.grad is None:
                continue
            # Reduced-precision parameters update a float64 master copy
            # (grad upcast, moments in float64, working copy recast);
            # float64 parameters take the exact pre-policy path.
            reduced = p.data.dtype != np.float64
            target = self._master(name, p) if reduced else p.data
            g = p.grad.astype(np.float64) if reduced else p.grad
            if self.weight_decay:
                g = g + self.weight_decay * target  # coupled L2 (classic Adam)
            slots = self.state.setdefault(name, {})
            m = slots.get("m")
            v = slots.get("v")
            m = b1 * m + (1 - b1) * g if m is not None else (1 - b1) * g
            v = b2 * v + (1 - b2) * (g * g) if v is not None else (1 - b2) * (g * g)
            slots["m"], slots["v"] = m, v
            target -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            if reduced:
                p.data = target.astype(p.data.dtype)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def step(self) -> None:
        if self.weight_decay:
            for name, p in self._named():
                if p.grad is None:
                    continue
                if p.data.dtype != np.float64:
                    # Decay the master — decaying the working copy would
                    # be overwritten by the master writeback in step().
                    master = self._master(name, p)
                    master -= self.lr * self.weight_decay * master
                else:
                    p.data -= self.lr * self.weight_decay * p.data
        wd, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = wd


class StepLR:
    """Multiply the optimizer's lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch; decays lr on multiples of ``step_size``."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma

    @property
    def last_lr(self) -> float:
        return self.optimizer.lr


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging exploding gradients).
    All-zero gradients return ``0.0`` without touching anything, and a
    non-finite norm is returned unscaled so callers can skip the step —
    scaling by ``max_norm / inf`` would silently zero every gradient.
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if np.isfinite(total) and total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
