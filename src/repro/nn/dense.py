"""Dense (fully connected) building blocks: Linear, Dropout, MLP.

These make up the classifier head of DGCNN/AM-DGCNN — the "dense layer"
stage of Fig. 2 in the paper.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import RngLike, as_generator

__all__ = ["Linear", "Dropout", "MLP"]


class Linear(Module):
    """Affine layer ``y = x W + b`` with Glorot-uniform weights.

    Weight is stored ``(in_features, out_features)`` so the forward pass is
    a single row-major matmul (cache-friendly for batched inputs).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng: RngLike = None):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        gen = as_generator(rng)
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng=gen))
        if bias:
            self.bias: Optional[Parameter] = Parameter(init.zeros((out_features,)))
        else:
            self.register_parameter("bias", None)
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class Dropout(Module):
    """Inverted dropout honoring the module's train/eval mode."""

    def __init__(self, p: float = 0.5, rng: RngLike = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = as_generator(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dropout(p={self.p})"


class MLP(Module):
    """Multi-layer perceptron with ReLU activations and optional dropout.

    ``dims = [in, h1, ..., out]``; the final layer is linear (no activation)
    so the output can be used as logits.
    """

    def __init__(
        self,
        dims: Sequence[int],
        dropout: float = 0.0,
        rng: RngLike = None,
    ):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        gen = as_generator(rng)
        self.layers = ModuleList(
            [Linear(dims[i], dims[i + 1], rng=gen) for i in range(len(dims) - 1)]
        )
        self.dropout = Dropout(dropout, rng=gen) if dropout > 0 else None
        self.dims: List[int] = list(dims)

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i != last:
                x = F.relu(x)
                if self.dropout is not None:
                    x = self.dropout(x)
        return x
