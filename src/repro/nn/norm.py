"""Normalization layers: LayerNorm and BatchNorm1d.

Not used by the paper's architectures (DGCNN has none), but provided for
the extension models and downstream users: deeper GNN stacks on larger
graphs typically need normalization to train. Both are fully
autograd-backed and gradcheck-tested.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, as_tensor

__all__ = ["LayerNorm", "BatchNorm1d"]


class LayerNorm(Module):
    """Per-row normalization over the last dimension with affine params."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        if x.shape[-1] != self.dim:
            raise ValueError(f"expected last dim {self.dim}, got {x.shape[-1]}")
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * ((var + self.eps) ** -0.5)
        return normed * self.gamma + self.beta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LayerNorm({self.dim})"


class BatchNorm1d(Module):
    """Batch normalization over the leading (batch/node) dimension.

    Running statistics are tracked with exponential moving averages and
    used in eval mode, matching the torch semantics the reproduction's
    users expect.
    """

    def __init__(self, dim: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        if dim <= 0:
            raise ValueError("dim must be positive")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must be in (0, 1]")
        self.dim = dim
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))
        self.running_mean = np.zeros(dim)
        self.running_var = np.ones(dim)

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        if x.ndim != 2 or x.shape[1] != self.dim:
            raise ValueError(f"expected (N, {self.dim}) input")
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=0, keepdims=True)
            # Track running stats outside the tape.
            m = self.momentum
            self.running_mean = (1 - m) * self.running_mean + m * mean.data.ravel()
            n = x.shape[0]
            unbiased = var.data.ravel() * (n / max(n - 1, 1))
            self.running_var = (1 - m) * self.running_var + m * unbiased
            normed = centered * ((var + self.eps) ** -0.5)
        else:
            normed = (x - Tensor(self.running_mean)) * Tensor(
                1.0 / np.sqrt(self.running_var + self.eps)
            )
        return normed * self.gamma + self.beta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchNorm1d({self.dim})"
