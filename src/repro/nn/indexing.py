"""Gather / scatter / segment operations for edge-list message passing.

GNN layers in this library operate on a graph expressed as an edge list
``edge_index`` of shape ``(2, E)``. A message-passing step is:

1. ``gather`` the source-node features onto the edges,
2. transform/weight the per-edge messages,
3. ``segment_sum`` (or mean/max) the messages onto the destination nodes.

The backward passes are the duals: the gradient of ``segment_sum`` is a
``gather``, and the gradient of ``gather`` is a ``scatter_add`` — both
vectorized with ``np.add.at`` / ``np.take`` per the HPC-Python guides (no
Python-level loops over edges).

``segment_softmax`` implements the per-destination normalization of GAT
attention coefficients with a numerically stable per-segment max shift.

Every op accepts an optional ``plan`` — a precomputed
:class:`~repro.nn.kernels.SegmentPlan` over its index array. With a plan
the scatter-style reductions run as contiguous kernels (bincount / CSR
matmul / sorted ``reduceat``, see :mod:`repro.nn.kernels`) that are
bit-identical to the ``np.add.at`` fallback used when ``plan`` is
``None`` or plans are globally disabled. The fallback stays in place as
the oracle the planned paths are validated against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import kernels
from repro.nn import workspace as _ws
from repro.nn.dtype import FLOAT64, get_compute_dtype
from repro.nn.kernels import SegmentPlan
from repro.nn.tensor import Tensor, as_tensor

__all__ = [
    "gather",
    "scatter_add",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_softmax",
    "segment_count",
]


def _check_index(index: np.ndarray) -> np.ndarray:
    index = np.asarray(index)
    if index.dtype.kind not in "iu":
        raise TypeError("index must be an integer array")
    if index.ndim != 1:
        raise ValueError("index must be 1-D")
    return index


def _active_plan(
    plan: Optional[SegmentPlan], index: np.ndarray, num_segments: int
) -> Optional[SegmentPlan]:
    """Validate and return the plan to use (None when globally disabled)."""
    plan = kernels.resolve_plan(plan)
    if plan is not None:
        plan.check(index, num_segments)
    return plan


def gather(
    x: Tensor, index: np.ndarray, *, plan: Optional[SegmentPlan] = None
) -> Tensor:
    """Select rows ``x[index]`` (differentiable; dual of scatter_add).

    Parameters
    ----------
    x: Tensor of shape ``(N, ...)``.
    index: integer array of shape ``(M,)`` with values in ``[0, N)``.
    plan: optional :class:`SegmentPlan` over ``(index, N)`` — routes the
        backward scatter-add through the planned kernel.

    Returns
    -------
    Tensor of shape ``(M, ...)``.
    """
    x = as_tensor(x)
    index = _check_index(index)
    # np.take's contiguous row-copy path is several times faster than
    # fancy indexing for 2-D+ operands; identical elements either way.
    out = np.take(x.data, index, axis=0)
    shape = x.data.shape
    plan = _active_plan(plan, index, shape[0])

    def vjp(g: np.ndarray) -> np.ndarray:
        if plan is not None:
            buf = _ws.grad_buffer((shape[0],) + g.shape[1:], g.dtype)
            return plan.segment_sum(g, out=buf)
        full = _ws.grad_buffer((shape[0],) + g.shape[1:], g.dtype, zero=True)
        np.add.at(full, index, g)
        return full

    return Tensor._from_op(out, (x,), (vjp,), "gather")


def scatter_add(
    x: Tensor,
    index: np.ndarray,
    num_segments: int,
    *,
    plan: Optional[SegmentPlan] = None,
) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` output slots by ``index``.

    ``out[s] = sum_{i : index[i]==s} x[i]``. Alias of :func:`segment_sum`
    but named for the scatter view of the same computation.
    """
    return segment_sum(x, index, num_segments, plan=plan)


def segment_sum(
    x: Tensor,
    index: np.ndarray,
    num_segments: int,
    *,
    plan: Optional[SegmentPlan] = None,
) -> Tensor:
    """Segmented sum: aggregate per-edge values onto nodes.

    Parameters
    ----------
    x: Tensor of shape ``(E, ...)`` — one row per edge.
    index: destination segment of each row, shape ``(E,)``.
    num_segments: number of output rows ``N``.
    plan: optional :class:`SegmentPlan` over ``(index, N)``.

    Returns
    -------
    Tensor of shape ``(N, ...)``; empty segments are zero.
    """
    x = as_tensor(x)
    index = _check_index(index)
    if len(index) != x.data.shape[0]:
        raise ValueError("index length must match the leading dim of x")
    if index.size and (index.min() < 0 or index.max() >= num_segments):
        raise ValueError("index out of range for num_segments")
    plan = _active_plan(plan, index, num_segments)
    if plan is not None:
        out = plan.segment_sum(x.data)
    else:
        out = np.zeros((num_segments,) + x.data.shape[1:], dtype=x.data.dtype)
        np.add.at(out, index, x.data)

    def vjp(g: np.ndarray) -> np.ndarray:
        buf = _ws.grad_buffer((index.size,) + g.shape[1:], g.dtype)
        return np.take(g, index, axis=0, out=buf)

    return Tensor._from_op(out, (x,), (vjp,), "segment_sum")


def segment_count(index: np.ndarray, num_segments: int) -> np.ndarray:
    """Number of rows per segment (plain ndarray, non-differentiable)."""
    index = _check_index(index)
    return np.bincount(index, minlength=num_segments).astype(get_compute_dtype())


def segment_mean(
    x: Tensor,
    index: np.ndarray,
    num_segments: int,
    *,
    plan: Optional[SegmentPlan] = None,
) -> Tensor:
    """Segmented mean; empty segments yield zero (not NaN)."""
    sums = segment_sum(x, index, num_segments, plan=plan)
    active = kernels.resolve_plan(plan)
    if active is not None:
        counts = np.maximum(active.counts.astype(FLOAT64), 1.0)
    else:
        counts = np.maximum(segment_count(index, num_segments).astype(FLOAT64), 1.0)
    counts = counts.reshape((num_segments,) + (1,) * (sums.ndim - 1))
    return sums * Tensor(1.0 / counts)


def segment_max(
    x: Tensor,
    index: np.ndarray,
    num_segments: int,
    fill: float = 0.0,
    *,
    plan: Optional[SegmentPlan] = None,
) -> Tensor:
    """Segmented max; empty segments are filled with ``fill``.

    Gradient flows to (one of) the argmax rows of each segment — ties are
    broken toward the first occurrence, matching ``np.maximum.at`` + argmax
    reconstruction.
    """
    x = as_tensor(x)
    index = _check_index(index)
    data = x.data
    plan = _active_plan(plan, index, num_segments)
    if plan is not None:
        out = plan.segment_max(data)
        empty = plan.empty
    else:
        out = np.full((num_segments,) + data.shape[1:], -np.inf, dtype=data.dtype)
        np.maximum.at(out, index, data)
        # One bincount instead of an np.isin allocation-and-scan per call.
        empty = np.bincount(index, minlength=num_segments) == 0
    if empty.any():
        out[empty] = fill

    # Identify, per (segment, feature) cell, the first edge row achieving
    # the max — gradient routes only there (subgradient choice).
    is_max = data == out[index]

    def vjp(g: np.ndarray) -> np.ndarray:
        grad = _ws.grad_buffer(data.shape, data.dtype, zero=True)
        gathered = g[index]
        # For duplicate maxima in a segment, split gradient equally: this
        # is a valid subgradient and keeps the op deterministic.
        if plan is not None:
            counts = plan.segment_sum(is_max.astype(data.dtype))
        else:
            counts = np.zeros_like(out)
            np.add.at(counts, index, is_max.astype(data.dtype))
        denom = np.where(counts[index] > 0, counts[index], 1.0)
        grad[is_max] = (gathered / denom)[is_max]
        return grad

    return Tensor._from_op(out, (x,), (vjp,), "segment_max")


def segment_softmax(
    logits: Tensor,
    index: np.ndarray,
    num_segments: int,
    *,
    plan: Optional[SegmentPlan] = None,
) -> Tensor:
    """Softmax normalized within each segment (GAT attention normalizer).

    ``out[i] = exp(logits[i] - m[s_i]) / sum_{j in segment s_i} exp(...)``
    where ``m[s]`` is the per-segment max (stability shift).

    Parameters
    ----------
    logits: Tensor of shape ``(E,)`` or ``(E, H)`` (multi-head).
    index: segment (destination node) of each row, shape ``(E,)``.
    num_segments: number of segments ``N``.
    plan: optional :class:`SegmentPlan` over ``(index, N)`` — the max
        shift, the normalizer and the backward reduction all reuse it.

    Returns
    -------
    Tensor with the shape of ``logits``; rows within a segment sum to 1
    along the edge dimension for every head.
    """
    logits = as_tensor(logits)
    index = _check_index(index)
    data = logits.data
    plan = _active_plan(plan, index, num_segments)
    if plan is not None:
        # Fused sorted-domain kernel (bit-identical — see SegmentPlan).
        out = plan.segment_softmax(data)
    else:
        # Per-segment max for numerical stability (constant wrt gradient).
        seg_max = np.full((num_segments,) + data.shape[1:], -np.inf, dtype=data.dtype)
        np.maximum.at(seg_max, index, data)
        seg_max[~np.isfinite(seg_max)] = 0.0  # empty segments
        expd = np.exp(data - seg_max[index])
        denom = np.zeros_like(seg_max)
        np.add.at(denom, index, expd)
        denom = np.where(denom > 0, denom, 1.0)
        out = expd / denom[index]

    def vjp(g: np.ndarray) -> np.ndarray:
        # d softmax: out * (g - sum_segment(g * out))
        weighted = g * out
        if plan is not None:
            seg_dot = plan.segment_sum(weighted)
        else:
            seg_dot = np.zeros((num_segments,) + g.shape[1:], dtype=g.dtype)
            np.add.at(seg_dot, index, weighted)
        buf = _ws.grad_buffer(g.shape, g.dtype)
        np.subtract(g, seg_dot[index], out=buf)
        np.multiply(out, buf, out=buf)
        return buf

    return Tensor._from_op(out, (logits,), (vjp,), "segment_softmax")
