"""Gather / scatter / segment operations for edge-list message passing.

GNN layers in this library operate on a graph expressed as an edge list
``edge_index`` of shape ``(2, E)``. A message-passing step is:

1. ``gather`` the source-node features onto the edges,
2. transform/weight the per-edge messages,
3. ``segment_sum`` (or mean/max) the messages onto the destination nodes.

The backward passes are the duals: the gradient of ``segment_sum`` is a
``gather``, and the gradient of ``gather`` is a ``scatter_add`` — both
vectorized with ``np.add.at`` / ``np.take`` per the HPC-Python guides (no
Python-level loops over edges).

``segment_softmax`` implements the per-destination normalization of GAT
attention coefficients with a numerically stable per-segment max shift.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.tensor import Tensor, as_tensor

__all__ = [
    "gather",
    "scatter_add",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_softmax",
    "segment_count",
]


def _check_index(index: np.ndarray) -> np.ndarray:
    index = np.asarray(index)
    if index.dtype.kind not in "iu":
        raise TypeError("index must be an integer array")
    if index.ndim != 1:
        raise ValueError("index must be 1-D")
    return index


def gather(x: Tensor, index: np.ndarray) -> Tensor:
    """Select rows ``x[index]`` (differentiable; dual of scatter_add).

    Parameters
    ----------
    x: Tensor of shape ``(N, ...)``.
    index: integer array of shape ``(M,)`` with values in ``[0, N)``.

    Returns
    -------
    Tensor of shape ``(M, ...)``.
    """
    x = as_tensor(x)
    index = _check_index(index)
    out = x.data[index]
    shape = x.data.shape

    def vjp(g: np.ndarray) -> np.ndarray:
        full = np.zeros(shape, dtype=np.float64)
        np.add.at(full, index, g)
        return full

    return Tensor._from_op(out, (x,), (vjp,), "gather")


def scatter_add(x: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` output slots by ``index``.

    ``out[s] = sum_{i : index[i]==s} x[i]``. Alias of :func:`segment_sum`
    but named for the scatter view of the same computation.
    """
    return segment_sum(x, index, num_segments)


def segment_sum(x: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Segmented sum: aggregate per-edge values onto nodes.

    Parameters
    ----------
    x: Tensor of shape ``(E, ...)`` — one row per edge.
    index: destination segment of each row, shape ``(E,)``.
    num_segments: number of output rows ``N``.

    Returns
    -------
    Tensor of shape ``(N, ...)``; empty segments are zero.
    """
    x = as_tensor(x)
    index = _check_index(index)
    if len(index) != x.data.shape[0]:
        raise ValueError("index length must match the leading dim of x")
    if index.size and (index.min() < 0 or index.max() >= num_segments):
        raise ValueError("index out of range for num_segments")
    out = np.zeros((num_segments,) + x.data.shape[1:], dtype=np.float64)
    np.add.at(out, index, x.data)

    def vjp(g: np.ndarray) -> np.ndarray:
        return g[index]

    return Tensor._from_op(out, (x,), (vjp,), "segment_sum")


def segment_count(index: np.ndarray, num_segments: int) -> np.ndarray:
    """Number of rows per segment (plain ndarray, non-differentiable)."""
    index = _check_index(index)
    return np.bincount(index, minlength=num_segments).astype(np.float64)


def segment_mean(x: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Segmented mean; empty segments yield zero (not NaN)."""
    sums = segment_sum(x, index, num_segments)
    counts = np.maximum(segment_count(index, num_segments), 1.0)
    counts = counts.reshape((num_segments,) + (1,) * (sums.ndim - 1))
    return sums * Tensor(1.0 / counts)


def segment_max(x: Tensor, index: np.ndarray, num_segments: int, fill: float = 0.0) -> Tensor:
    """Segmented max; empty segments are filled with ``fill``.

    Gradient flows to (one of) the argmax rows of each segment — ties are
    broken toward the first occurrence, matching ``np.maximum.at`` + argmax
    reconstruction.
    """
    x = as_tensor(x)
    index = _check_index(index)
    data = x.data
    out = np.full((num_segments,) + data.shape[1:], -np.inf, dtype=np.float64)
    np.maximum.at(out, index, data)
    empty = ~np.isin(np.arange(num_segments), index)
    if empty.any():
        out[empty] = fill

    # Identify, per (segment, feature) cell, the first edge row achieving
    # the max — gradient routes only there (subgradient choice).
    is_max = data == out[index]

    def vjp(g: np.ndarray) -> np.ndarray:
        grad = np.zeros_like(data)
        gathered = g[index]
        # For duplicate maxima in a segment, split gradient equally: this
        # is a valid subgradient and keeps the op deterministic.
        counts = np.zeros_like(out)
        np.add.at(counts, index, is_max.astype(np.float64))
        denom = np.where(counts[index] > 0, counts[index], 1.0)
        grad[is_max] = (gathered / denom)[is_max]
        return grad

    return Tensor._from_op(out, (x,), (vjp,), "segment_max")


def segment_softmax(logits: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Softmax normalized within each segment (GAT attention normalizer).

    ``out[i] = exp(logits[i] - m[s_i]) / sum_{j in segment s_i} exp(...)``
    where ``m[s]`` is the per-segment max (stability shift).

    Parameters
    ----------
    logits: Tensor of shape ``(E,)`` or ``(E, H)`` (multi-head).
    index: segment (destination node) of each row, shape ``(E,)``.
    num_segments: number of segments ``N``.

    Returns
    -------
    Tensor with the shape of ``logits``; rows within a segment sum to 1
    along the edge dimension for every head.
    """
    logits = as_tensor(logits)
    index = _check_index(index)
    data = logits.data
    # Per-segment max for numerical stability (constant wrt gradient).
    seg_max = np.full((num_segments,) + data.shape[1:], -np.inf, dtype=np.float64)
    np.maximum.at(seg_max, index, data)
    seg_max[~np.isfinite(seg_max)] = 0.0  # empty segments
    shifted = data - seg_max[index]
    expd = np.exp(shifted)
    denom = np.zeros_like(seg_max)
    np.add.at(denom, index, expd)
    denom = np.where(denom > 0, denom, 1.0)
    out = expd / denom[index]

    def vjp(g: np.ndarray) -> np.ndarray:
        # d softmax: out * (g - sum_segment(g * out))
        weighted = g * out
        seg_dot = np.zeros_like(seg_max)
        np.add.at(seg_dot, index, weighted)
        return out * (g - seg_dot[index])

    return Tensor._from_op(out, (logits,), (vjp,), "segment_softmax")
