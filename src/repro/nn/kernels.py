"""Sorted segment-kernel engine: precomputed plans for scatter hot paths.

Every GNN forward/backward in this library bottoms out in segmented
reductions over a destination-index array (``segment_sum`` /
``segment_max`` / ``segment_softmax`` and the ``gather``-backward
scatter-add in :mod:`repro.nn.indexing`). The straightforward NumPy
spelling, ``np.add.at`` / ``np.maximum.at``, is unbuffered and
order-preserving — and for multi-column operands it takes the generic
slow path, which is 3–20× slower than a contiguous reduction. Worse,
it rediscovers the segment structure on *every* op, *every* layer,
*every* epoch, even though the topology of a batch never changes.

:class:`SegmentPlan` factors the structure out: given ``(index,
num_segments)`` it precomputes once

* per-segment ``counts`` and the CSR-style ``indptr`` offsets,
* the stable argsort ``order`` grouping rows by segment (identity when
  the index is already sorted — batch vectors always are),
* ``starts`` — reduceat offsets over the *non-empty* segments — and the
  ``empty`` mask,
* lazily, a ``scipy.sparse`` CSR scatter matrix whose row ``s`` selects
  the rows of segment ``s`` in stable order.

and then implements each reduction as a contiguous kernel over the plan:

* ``segment_sum``: 1-D operands go through ``np.bincount`` (a tight
  sequential C loop); n-D operands through one CSR × dense matmul
  (sequential per-row accumulation). Both visit the addends of each
  segment in original row order, so the results are **bit-identical**
  to the ``np.add.at`` fallback — same floats, same rounding. (The
  textbook ``np.add.reduceat`` spelling is *not* used for sums because
  its pairwise summation associates differently from ``np.add.at`` in
  the last ulp; determinism across the planned/fallback switch is a
  hard requirement here.)
* ``segment_max``: sort + ``np.maximum.reduceat`` over the plan
  (max is exactly associative, so sorted reduction is bit-safe).

The plan costs one ``argsort`` + ``bincount``; callers amortize it via
:class:`PlanCache` (memoized per :class:`~repro.graph.batch.GraphBatch`,
carried across epochs by :class:`~repro.data.store.SubgraphStore`).

``set_plans_enabled(False)`` / the :class:`use_plans` context manager
globally force every op back onto the ``np.add.at`` fallback — the
oracle the planned kernels are validated against in ``tests/nn``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.nn import workspace as _ws
from repro.nn.dtype import FLOAT64, get_compute_dtype

try:  # scipy ships with the repo's dependencies, but stay importable without it
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - exercised via _segment_sum_nd fallback
    _sparse = None

__all__ = [
    "SegmentPlan",
    "PlanCache",
    "plans_enabled",
    "set_plans_enabled",
    "use_plans",
    "resolve_plan",
]


# --------------------------------------------------------------------- #
# global switch
# --------------------------------------------------------------------- #

_PLANS_ENABLED = True


def plans_enabled() -> bool:
    """Whether ops honor ``plan=`` arguments (True by default)."""
    return _PLANS_ENABLED


def set_plans_enabled(flag: bool) -> bool:
    """Toggle planned kernels globally; returns the previous setting."""
    global _PLANS_ENABLED
    previous = _PLANS_ENABLED
    _PLANS_ENABLED = bool(flag)
    return previous


class use_plans:
    """Context manager pinning the planned-kernel switch.

    >>> from repro.nn import kernels
    >>> with kernels.use_plans(False):
    ...     kernels.plans_enabled()
    False
    """

    def __init__(self, flag: bool) -> None:
        self._flag = bool(flag)
        self._prev = True

    def __enter__(self) -> "use_plans":
        self._prev = set_plans_enabled(self._flag)
        return self

    def __exit__(self, *exc: Any) -> None:
        set_plans_enabled(self._prev)


def resolve_plan(plan):
    """The plan to actually use: ``None`` when plans are globally disabled."""
    return plan if _PLANS_ENABLED else None


def _as_compute(data: np.ndarray) -> np.ndarray:
    """Kernel operand coercion: keep float dtypes, lift others to policy.

    Planned kernels are dtype-preserving — float32 in, float32 out —
    so the compute policy set at tensor construction flows through the
    whole segment engine without further casts.
    """
    data = np.asarray(data)
    if data.dtype.kind != "f":
        data = data.astype(get_compute_dtype())
    return data


# --------------------------------------------------------------------- #
# SegmentPlan
# --------------------------------------------------------------------- #


class SegmentPlan:
    """Precomputed reduction structure for one ``(index, num_segments)``.

    Parameters
    ----------
    index: integer array of shape ``(E,)`` with values in
        ``[0, num_segments)`` — the destination segment of each row.
    num_segments: number of output rows ``N``.

    Attributes
    ----------
    counts: ``(N,)`` int64 rows per segment.
    indptr: ``(N + 1,)`` int64 CSR-style offsets into the sorted order.
    order: ``(E,)`` int64 stable permutation grouping rows by segment
        (``np.arange(E)`` when ``index`` is already non-decreasing).
    starts: reduceat offsets of the non-empty segments.
    empty: ``(N,)`` bool mask of segments with no rows.
    """

    __slots__ = (
        "index",
        "num_segments",
        "size",
        "counts",
        "indptr",
        "order",
        "starts",
        "nonempty",
        "empty",
        "is_sorted",
        "_matrix",
        "_sorted_matrix",
        "_sorted_index",
        "_inverse",
    )

    def __init__(self, index: np.ndarray, num_segments: int):
        index = np.asarray(index)
        if index.dtype.kind not in "iu":
            raise TypeError("index must be an integer array")
        if index.ndim != 1:
            raise ValueError("index must be 1-D")
        num_segments = int(num_segments)
        if num_segments < 0:
            raise ValueError("num_segments must be non-negative")
        if index.size and (index.min() < 0 or index.max() >= num_segments):
            raise ValueError("index out of range for num_segments")
        self.index = index
        self.num_segments = num_segments
        self.size = int(index.size)
        self.counts = np.bincount(index, minlength=num_segments)
        self.indptr = np.concatenate([[0], np.cumsum(self.counts)]).astype(np.int64)
        self.is_sorted = bool(index.size == 0 or np.all(index[:-1] <= index[1:]))
        if self.is_sorted:
            # Batch vectors (and presorted edge lists) skip the argsort.
            self.order = np.arange(self.size, dtype=np.int64)
        else:
            self.order = np.argsort(index, kind="stable")
        self.nonempty = self.counts > 0
        self.empty = ~self.nonempty
        self.starts = self.indptr[:-1][self.nonempty]
        self._matrix = {}
        self._sorted_matrix = {}
        self._sorted_index = None
        self._inverse = None
        obs.count("kernels.plan.built")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SegmentPlan(size={self.size}, num_segments={self.num_segments})"

    def check(self, index: np.ndarray, num_segments: int) -> None:
        """Cheap compatibility guard for ops handed an external plan.

        Verifies the shape contract (not element equality — that would
        cost as much as building the plan). Callers own content validity.
        """
        if num_segments != self.num_segments or len(index) != self.size:
            raise ValueError(
                f"plan built for ({self.size} rows, {self.num_segments} segments) "
                f"used with ({len(index)} rows, {num_segments} segments)"
            )

    # ------------------------------------------------------------------ #
    # kernels
    # ------------------------------------------------------------------ #
    def _scatter_matrix(self, dtype):
        """Lazily built ``(N, E)`` CSR matrix summing rows per segment.

        Cached per dtype — a float64 matrix would upcast a float32
        operand through the matmul, defeating the compute policy.
        """
        if _sparse is None:
            return None
        dtype = np.dtype(dtype)
        matrix = self._matrix.get(dtype.str)
        if matrix is None:
            matrix = self._matrix[dtype.str] = _sparse.csr_matrix(
                (
                    np.ones(self.size, dtype=dtype),
                    self.order.astype(np.int32),
                    self.indptr.astype(np.int32),
                ),
                shape=(self.num_segments, self.size),
            )
        return matrix

    def take_sorted(self, data: np.ndarray) -> np.ndarray:
        """``data`` permuted into segment-grouped order (no copy if sorted).

        ``np.take`` rather than ``data[self.order]`` — its contiguous
        row-copy specialization is several times faster than generic
        fancy indexing, and a pure permutation is bit-exact either way.
        """
        return data if self.is_sorted else np.take(data, self.order, axis=0)

    def inverse_order(self) -> np.ndarray:
        """Permutation undoing :attr:`order` (cached; gather beats scatter)."""
        if self._inverse is None:
            inverse = np.empty(self.size, dtype=np.int64)
            inverse[self.order] = np.arange(self.size, dtype=np.int64)
            self._inverse = inverse
        return self._inverse

    def segment_sum(
        self, data: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Per-segment sums, bit-identical to the ``np.add.at`` scatter.

        ``out`` (shape ``(N,) + data.shape[1:]``, matching dtype) receives
        the result when given — callers on the tape pass workspace
        buffers so steady-state backwards reuse rather than allocate.
        The values are identical either way.
        """
        with obs.trace("kernel.segment_sum"):
            data = _as_compute(data)
            tail = data.shape[1:]
            if self.size == 0:
                if out is not None:
                    out.fill(0)
                    return out
                return np.zeros((self.num_segments,) + tail, dtype=data.dtype)
            if data.ndim == 1 and data.dtype == FLOAT64:
                result = np.bincount(
                    self.index, weights=data, minlength=self.num_segments
                )
            elif data.ndim == 1:
                # bincount accumulates in float64 — that would round
                # differently from the float32 ``np.add.at`` fallback, so
                # reduced precision keeps bit-identity via the CSR path.
                result = self.segment_sum(data.reshape(self.size, 1)).reshape(
                    self.num_segments
                )
            else:
                flat = np.ascontiguousarray(data.reshape(self.size, -1))
                matrix = self._scatter_matrix(data.dtype)
                if matrix is not None:
                    result = (matrix @ flat).reshape((self.num_segments,) + tail)
                else:  # no scipy: per-column bincount over a contiguous layout
                    cols = np.ascontiguousarray(flat.T)
                    result = np.empty(
                        (self.num_segments, flat.shape[1]), dtype=data.dtype
                    )
                    for j in range(flat.shape[1]):
                        result[:, j] = np.bincount(
                            self.index, weights=cols[j], minlength=self.num_segments
                        )
                    result = result.reshape((self.num_segments,) + tail)
            if out is not None:
                np.copyto(out, result)
                return out
            return result

    def segment_max(
        self, data: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Per-segment maxima via sort + ``np.maximum.reduceat``.

        Empty segments are ``-inf`` — callers apply their own fill.
        ``out`` receives the result in place when given.
        """
        with obs.trace("kernel.segment_max"):
            data = _as_compute(data)
            if out is None:
                out = np.empty((self.num_segments,) + data.shape[1:], dtype=data.dtype)
            out.fill(-np.inf)
            if self.size:
                sorted_data, scratch = self._take_sorted_scratch(data)
                out[self.nonempty] = np.maximum.reduceat(
                    sorted_data, self.starts, axis=0
                )
                if scratch is not None:
                    _ws.global_workspace().release(scratch)
            return out

    def _take_sorted_scratch(self, data: np.ndarray):
        """Segment-sorted view of ``data`` plus the pooled scratch to release.

        When the index is presorted this is ``(data, None)`` — zero copies.
        Otherwise the permutation lands in a workspace buffer (when the
        pool is enabled) that the caller must hand back after use.
        """
        if self.is_sorted:
            return data, None
        if _ws.workspace_enabled():
            buf = _ws.global_workspace().acquire(data.shape, data.dtype)
            np.take(data, self.order, axis=0, out=buf)
            return buf, buf
        return np.take(data, self.order, axis=0), None

    def _sorted_segment_sum(self, data: np.ndarray) -> np.ndarray:
        """Per-segment sums of *already segment-sorted* rows.

        Stable sorting preserves the original relative order of each
        segment's rows, and both kernels below accumulate each segment
        sequentially in that order — so this is bit-identical to
        ``np.add.at`` over the unsorted data.
        """
        tail = data.shape[1:]
        if self._sorted_index is None:
            self._sorted_index = (
                self.index if self.is_sorted else self.index[self.order]
            )
        if data.ndim == 1 and data.dtype == FLOAT64:
            return np.bincount(
                self._sorted_index, weights=data, minlength=self.num_segments
            )
        if data.ndim == 1:
            return self._sorted_segment_sum(data.reshape(self.size, 1)).reshape(
                self.num_segments
            )
        flat = np.ascontiguousarray(data.reshape(self.size, -1))
        matrix = self._sorted_scatter_matrix(data.dtype)
        if matrix is not None:
            out = matrix @ flat
        else:  # no scipy: per-column bincount over a contiguous layout
            cols = np.ascontiguousarray(flat.T)
            out = np.empty((self.num_segments, flat.shape[1]), dtype=data.dtype)
            for j in range(flat.shape[1]):
                out[:, j] = np.bincount(
                    self._sorted_index, weights=cols[j], minlength=self.num_segments
                )
        return out.reshape((self.num_segments,) + tail)

    def _sorted_scatter_matrix(self, dtype):
        """CSR summing *presorted* rows per segment, cached per dtype."""
        if _sparse is None:
            return None
        if self.is_sorted:
            return self._scatter_matrix(dtype)
        dtype = np.dtype(dtype)
        matrix = self._sorted_matrix.get(dtype.str)
        if matrix is None:
            matrix = self._sorted_matrix[dtype.str] = _sparse.csr_matrix(
                (
                    np.ones(self.size, dtype=dtype),
                    np.arange(self.size, dtype=np.int32),
                    self.indptr.astype(np.int32),
                ),
                shape=(self.num_segments, self.size),
            )
        return matrix

    def segment_softmax(
        self, data: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Fused per-segment softmax, bit-identical to the scatter fallback.

        Runs entirely in the segment-sorted domain — one permutation in,
        ``maximum.reduceat`` for the stability shift, ``np.repeat`` (by
        segment counts) instead of per-row fancy gathers to broadcast the
        per-segment max and normalizer, and one inverse permutation out.
        The normalizer sum goes through :meth:`_sorted_segment_sum`, so
        every float matches the ``np.maximum.at``/``np.add.at`` fallback
        exactly: max is exactly associative, the elementwise steps see
        identical operands, and the sums accumulate in identical order.
        """
        with obs.trace("kernel.segment_softmax"):
            data = _as_compute(data)
            if self.size == 0:
                if out is not None:
                    out.fill(0)
                    return out
                return np.zeros_like(data)
            if data.ndim == 1:
                # 1-D ufunc.at has a fast indexed loop in NumPy >= 1.24;
                # the sort/unsort round trip cannot beat it there.
                seg_max = np.full(self.num_segments, -np.inf, dtype=data.dtype)
                np.maximum.at(seg_max, self.index, data)
                seg_max[~np.isfinite(seg_max)] = 0.0
                expd = np.exp(data - seg_max[self.index])
                denom = self.segment_sum(expd)
                denom = np.where(denom > 0, denom, 1.0)
                if out is not None:
                    np.divide(expd, denom[self.index], out=out)
                    return out
                return expd / denom[self.index]
            sorted_data, scratch = self._take_sorted_scratch(data)
            live_counts = self.counts[self.nonempty]
            seg_max = np.maximum.reduceat(sorted_data, self.starts, axis=0)
            seg_max[~np.isfinite(seg_max)] = 0.0  # all-(-inf)/nan segments
            # Broadcast per-segment rows by np.repeat (cheap, contiguous)
            # and reuse the repeated buffers in place — identical floats,
            # three fewer (E, ...) allocations.
            expd = np.repeat(seg_max, live_counts, axis=0)
            np.subtract(sorted_data, expd, out=expd)
            np.exp(expd, out=expd)
            if scratch is not None:
                _ws.global_workspace().release(scratch)
            denom = self._sorted_segment_sum(expd)[self.nonempty]
            denom = np.where(denom > 0, denom, 1.0)
            out_sorted = np.repeat(denom, live_counts, axis=0)
            np.divide(expd, out_sorted, out=out_sorted)
            if self.is_sorted:
                if out is not None:
                    np.copyto(out, out_sorted)
                    return out
                return out_sorted
            if out is not None:
                np.take(out_sorted, self.inverse_order(), axis=0, out=out)
                return out
            return np.take(out_sorted, self.inverse_order(), axis=0)


# --------------------------------------------------------------------- #
# PlanCache
# --------------------------------------------------------------------- #


class PlanCache:
    """Memoized :class:`SegmentPlan` views of one batched graph.

    One instance per collated batch (see ``GraphBatch.plans``) lazily
    builds and caches exactly the structures the layers ask for:

    * ``dst()`` / ``src()`` — plans over the raw edge endpoints,
    * ``dst(loops=True)`` / ``src(loops=True)`` — plans over the
      self-loop-augmented edge list,
    * ``loop_edge_index()`` — the augmented ``(2, E + N)`` edge list
      itself (what :func:`~repro.models.layers.add_self_loops` would
      rebuild every forward),
    * ``gcn_coeff()`` — the GCN symmetric degree normalization per arc,
    * ``loop_edge_attr(attr)`` — ``attr`` zero-padded for the loops,
    * ``node()`` — the plan over the node→graph ``batch`` vector
      (SortPooling counts/starts, center-pool offsets).

    Every accessor records a ``kernels.plan_cache.hits`` /
    ``kernels.plan_cache.misses`` counter, so ``python -m repro profile``
    can report the cache hit rate. Instances are carried across epochs
    by :class:`~repro.data.store.SubgraphStore` keyed on batch
    composition; the underlying buffers are immutable by convention, so
    a cached plan stays valid for any batch with identical content.
    """

    __slots__ = (
        "edge_index",
        "num_nodes",
        "batch",
        "num_graphs",
        "_plans",
        "_loop_edge_index",
        "_gcn_coeff",
        "_loop_zeros",
    )

    def __init__(
        self,
        edge_index: np.ndarray,
        num_nodes: int,
        *,
        batch: Optional[np.ndarray] = None,
        num_graphs: Optional[int] = None,
    ):
        self.edge_index = edge_index
        self.num_nodes = int(num_nodes)
        self.batch = batch
        self.num_graphs = num_graphs
        self._plans: Dict[Tuple[str, bool], SegmentPlan] = {}
        self._loop_edge_index: Optional[np.ndarray] = None
        self._gcn_coeff: Dict[str, np.ndarray] = {}
        self._loop_zeros: Dict[Tuple[int, str], np.ndarray] = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanCache(edges={self.edge_index.shape[1]}, nodes={self.num_nodes}, "
            f"plans={len(self._plans)})"
        )

    # -- memoization plumbing ------------------------------------------ #
    def _memo(self, key, build):
        value = self._plans.get(key)
        if value is None:
            obs.count("kernels.plan_cache.misses")
            value = self._plans[key] = build()
        else:
            obs.count("kernels.plan_cache.hits")
        return value

    # -- edge-endpoint plans ------------------------------------------- #
    def dst(self, loops: bool = False) -> SegmentPlan:
        """Plan over destination endpoints (segment ops aggregate here)."""
        ei = self.loop_edge_index() if loops else self.edge_index
        return self._memo(("dst", loops), lambda: SegmentPlan(ei[1], self.num_nodes))

    def src(self, loops: bool = False) -> SegmentPlan:
        """Plan over source endpoints (the ``gather``-backward scatter)."""
        ei = self.loop_edge_index() if loops else self.edge_index
        return self._memo(("src", loops), lambda: SegmentPlan(ei[0], self.num_nodes))

    def node(self) -> SegmentPlan:
        """Plan over the node→graph ``batch`` vector (always presorted)."""
        if self.batch is None or self.num_graphs is None:
            raise ValueError("this PlanCache was built without a batch vector")
        return self._memo(
            ("node", False), lambda: SegmentPlan(self.batch, self.num_graphs)
        )

    # -- cached self-loop topology ------------------------------------- #
    def loop_edge_index(self) -> np.ndarray:
        """The self-loop-augmented edge list ``(2, E + N)``, built once."""
        if self._loop_edge_index is None:
            obs.count("kernels.plan_cache.misses")
            loops = np.arange(self.num_nodes, dtype=np.int64)
            self._loop_edge_index = np.concatenate(
                [self.edge_index, np.stack([loops, loops])], axis=1
            )
        else:
            obs.count("kernels.plan_cache.hits")
        return self._loop_edge_index

    def gcn_coeff(self, dtype=None) -> np.ndarray:
        """Per-arc ``D̂^{-1/2} Â D̂^{-1/2}`` weights over the loop edges.

        Cached per compute dtype (``dtype=None`` resolves to the active
        policy); the float32 entry is the float64 computation narrowed
        once, not a reduced-precision recomputation.
        """
        dtype = np.dtype(dtype) if dtype is not None else get_compute_dtype()
        coeff = self._gcn_coeff.get(dtype.str)
        if coeff is None:
            obs.count("kernels.plan_cache.misses")
            src, dst = self.loop_edge_index()
            deg = self.dst(loops=True).counts.astype(FLOAT64)
            inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1.0))
            coeff = (inv_sqrt[src] * inv_sqrt[dst]).astype(dtype, copy=False)
            self._gcn_coeff[dtype.str] = coeff
        else:
            obs.count("kernels.plan_cache.hits")
        return coeff

    def loop_edge_attr(self, edge_attr: Optional[np.ndarray]) -> Optional[np.ndarray]:
        """``edge_attr`` with zero rows appended for the self-loops.

        Only the zero loop-rows block is cached (per width); the
        concatenation itself is recomputed so callers that mutate
        ``edge_attr`` in place — e.g. ablations rewriting attributes
        between forwards — always see current values.
        """
        if edge_attr is None:
            return None
        width = int(edge_attr.shape[1])
        dtype = edge_attr.dtype if edge_attr.dtype.kind == "f" else get_compute_dtype()
        key = (width, dtype.str)
        loop_rows = self._loop_zeros.get(key)
        if loop_rows is None:
            obs.count("kernels.plan_cache.misses")
            loop_rows = self._loop_zeros[key] = np.zeros(
                (self.num_nodes, width), dtype=dtype
            )
        else:
            obs.count("kernels.plan_cache.hits")
        return np.concatenate([edge_attr, loop_rows], axis=0)
