"""Weight-initialization schemes.

Glorot/Xavier is the default everywhere, matching PyTorch Geometric's GCN
and GAT initializers; Kaiming is provided for ReLU-heavy dense heads.
Each function *returns* a fresh ndarray rather than mutating, so callers
can route all randomness through one generator.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.nn.dtype import get_compute_dtype
from repro.utils.rng import RngLike, as_generator

__all__ = [
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "zeros",
    "uniform",
]


def _fans(shape: Sequence[int]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("shape must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[0] * receptive
    fan_out = shape[1] * receptive
    return fan_in, fan_out


def xavier_uniform(shape: Sequence[int], gain: float = 1.0, rng: RngLike = None) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return as_generator(rng).uniform(-bound, bound, size=tuple(shape))


def xavier_normal(shape: Sequence[int], gain: float = 1.0, rng: RngLike = None) -> np.ndarray:
    """Glorot normal: N(0, gain^2 * 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return as_generator(rng).normal(0.0, std, size=tuple(shape))


def kaiming_uniform(shape: Sequence[int], negative_slope: float = 0.0, rng: RngLike = None) -> np.ndarray:
    """He uniform for (leaky-)ReLU fan-in scaling."""
    fan_in, _ = _fans(shape)
    gain = np.sqrt(2.0 / (1.0 + negative_slope**2))
    bound = gain * np.sqrt(3.0 / fan_in)
    return as_generator(rng).uniform(-bound, bound, size=tuple(shape))


def zeros(shape: Sequence[int]) -> np.ndarray:
    """All-zero init (biases)."""
    return np.zeros(tuple(shape), dtype=get_compute_dtype())


def uniform(shape: Sequence[int], low: float = -0.05, high: float = 0.05, rng: RngLike = None) -> np.ndarray:
    """Plain uniform init in ``[low, high)``."""
    return as_generator(rng).uniform(low, high, size=tuple(shape))
