"""Loss functions for link classification.

Cross-entropy is the training loss throughout the reproduction (the SEAL
classifier head emits per-class logits). Binary-cross-entropy covers the
Cora-style link-existence task when framed with a single logit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.functional import log_softmax
from repro.nn.tensor import Tensor, as_tensor

__all__ = ["cross_entropy", "nll_loss", "bce_with_logits", "l2_penalty"]


def nll_loss(log_probs: Tensor, targets: np.ndarray, weight: Optional[np.ndarray] = None) -> Tensor:
    """Negative log-likelihood given per-row log-probabilities.

    Parameters
    ----------
    log_probs: ``(B, C)`` log-probabilities (e.g. from ``log_softmax``).
    targets: integer class ids ``(B,)``.
    weight: optional per-class weights ``(C,)`` for imbalanced data.
    """
    log_probs = as_tensor(log_probs)
    targets = np.asarray(targets)
    if targets.ndim != 1 or targets.shape[0] != log_probs.shape[0]:
        raise ValueError("targets must be 1-D and match the batch size")
    rows = np.arange(targets.shape[0])
    picked = log_probs[(rows, targets)]
    if weight is not None:
        w = np.asarray(weight, dtype=log_probs.data.dtype)[targets]
        return -(picked * Tensor(w)).sum() * (1.0 / max(float(w.sum()), 1e-12))
    return -picked.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray, weight: Optional[np.ndarray] = None) -> Tensor:
    """Softmax cross-entropy from raw logits (stable log-softmax inside)."""
    return nll_loss(log_softmax(as_tensor(logits), axis=-1), targets, weight)


def bce_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Binary cross-entropy on raw logits, numerically stable.

    Uses ``max(z,0) - z*y + log(1 + exp(-|z|))``; ``targets`` in {0,1}.
    """
    logits = as_tensor(logits)
    y = np.asarray(targets, dtype=logits.data.dtype)
    if y.shape != logits.shape:
        raise ValueError("targets must match logits shape")
    z = logits.data
    out = np.maximum(z, 0.0) - z * y + np.log1p(np.exp(-np.abs(z)))
    sig = 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))

    def vjp(g: np.ndarray) -> np.ndarray:
        return g * (sig - y)

    per_elem = Tensor._from_op(out, (logits,), (vjp,), "bce_with_logits")
    return per_elem.mean()


def l2_penalty(parameters, coeff: float) -> Tensor:
    """Sum of squared parameter values scaled by ``coeff`` (weight decay)."""
    total: Optional[Tensor] = None
    for p in parameters:
        term = (p * p).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total * coeff
