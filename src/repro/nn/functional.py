"""Functional neural-network operations composed from autograd primitives.

Mirrors the subset of ``torch.nn.functional`` the AM-DGCNN stack needs:
activations, (log-)softmax, dropout, one-hot encoding and padding. All
functions take/return :class:`~repro.nn.tensor.Tensor` and are covered by
finite-difference gradient tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.dtype import get_compute_dtype
from repro.nn.tensor import Tensor, as_tensor
from repro.utils.rng import RngLike, as_generator

__all__ = [
    "relu",
    "leaky_relu",
    "tanh",
    "sigmoid",
    "elu",
    "softmax",
    "log_softmax",
    "dropout",
    "one_hot",
    "pad_rows",
    "linear",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, ``max(x, 0)``."""
    return as_tensor(x).relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Leaky ReLU; the 0.2 default matches the GAT paper's attention slope."""
    return as_tensor(x).leaky_relu(negative_slope)


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent (DGCNN uses tanh after each graph convolution)."""
    return as_tensor(x).tanh()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return as_tensor(x).sigmoid()


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit (GAT's inter-layer activation)."""
    x = as_tensor(x)
    data = x.data
    mask = data > 0
    expm1 = alpha * (np.exp(np.minimum(data, 0.0)) - 1.0)
    out = np.where(mask, data, expm1)

    def vjp(g: np.ndarray) -> np.ndarray:
        return g * np.where(mask, 1.0, expm1 + alpha)

    return Tensor._from_op(out, (x,), (vjp,), "elu")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    data = x.data
    shifted = data - data.max(axis=axis, keepdims=True)
    expd = np.exp(shifted)
    out = expd / expd.sum(axis=axis, keepdims=True)

    def vjp(g: np.ndarray) -> np.ndarray:
        dot = (g * out).sum(axis=axis, keepdims=True)
        return out * (g - dot)

    return Tensor._from_op(out, (x,), (vjp,), "softmax")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    data = x.data
    m = data.max(axis=axis, keepdims=True)
    shifted = data - m
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - lse
    soft = np.exp(out)

    def vjp(g: np.ndarray) -> np.ndarray:
        return g - soft * g.sum(axis=axis, keepdims=True)

    return Tensor._from_op(out, (x,), (vjp,), "log_softmax")


def dropout(
    x: Tensor,
    p: float = 0.5,
    *,
    training: bool = True,
    rng: RngLike = None,
) -> Tensor:
    """Inverted dropout: zero each element w.p. ``p``; scale kept by 1/(1-p).

    Identity when ``training`` is False or ``p == 0``. The mask is drawn
    from ``rng`` so training runs are reproducible.
    """
    x = as_tensor(x)
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    gen = as_generator(rng)
    keep = gen.random(x.data.shape) >= p
    scale = 1.0 / (1.0 - p)
    # Cast the boolean mask before scaling: bool * float would make a
    # float64 mask and silently promote a float32 activation.
    mask = keep.astype(x.data.dtype) * scale
    out = x.data * mask
    return Tensor._from_op(out, (x,), (lambda g: g * mask,), "dropout")


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Dense one-hot encoding (plain ndarray — feature-building helper).

    Out-of-range labels raise; a label of ``-1`` encodes "no class" and
    produces an all-zero row (used for null DRNL labels).
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError("labels must be 1-D")
    out = np.zeros((labels.shape[0], num_classes), dtype=get_compute_dtype())
    valid = labels >= 0
    if (labels[valid] >= num_classes).any():
        raise ValueError("label exceeds num_classes")
    out[np.nonzero(valid)[0], labels[valid]] = 1.0
    return out


def pad_rows(x: Tensor, target_rows: int) -> Tensor:
    """Zero-pad (or truncate) the leading dimension to ``target_rows``.

    Used by SortPooling when a graph has fewer than ``k`` nodes. Gradient
    flows only through the retained rows.
    """
    x = as_tensor(x)
    n = x.data.shape[0]
    if n == target_rows:
        return x
    if n > target_rows:
        return x[np.arange(target_rows)]
    pad_shape = (target_rows - n,) + x.data.shape[1:]
    out = np.concatenate([x.data, np.zeros(pad_shape, dtype=x.data.dtype)], axis=0)

    def vjp(g: np.ndarray) -> np.ndarray:
        return g[:n]

    return Tensor._from_op(out, (x,), (vjp,), "pad_rows")


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight + bias`` (weight stored input×output)."""
    out = as_tensor(x) @ weight
    if bias is not None:
        out = out + bias
    return out
