"""NumPy autograd + neural-network substrate (torch stand-in).

Public surface::

    from repro.nn import Tensor, Module, Parameter, Linear, Adam
    from repro.nn import functional as F
"""

from repro.nn import dtype
from repro.nn import functional
from repro.nn import init
from repro.nn import kernels
from repro.nn import workspace
from repro.nn.conv import Conv1d, MaxPool1d
from repro.nn.dense import MLP, Dropout, Linear
from repro.nn.dtype import (
    cast_module,
    compute_dtype,
    get_compute_dtype,
    resolve_dtype,
    set_compute_dtype,
)
from repro.nn.gradcheck import gradcheck, numeric_grad
from repro.nn.kernels import (
    PlanCache,
    SegmentPlan,
    plans_enabled,
    set_plans_enabled,
    use_plans,
)
from repro.nn.indexing import (
    gather,
    scatter_add,
    segment_count,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
)
from repro.nn.losses import bce_with_logits, cross_entropy, l2_penalty, nll_loss
from repro.nn.module import Module, ModuleList, Parameter, Sequential
from repro.nn.norm import BatchNorm1d, LayerNorm
from repro.nn.optim import SGD, Adam, AdamW, Optimizer, StepLR, clip_grad_norm
from repro.nn.tensor import Tensor, as_tensor, concatenate, is_grad_enabled, no_grad, stack, where
from repro.nn.workspace import (
    Workspace,
    global_workspace,
    set_workspace_enabled,
    use_workspace,
    workspace_enabled,
)

__all__ = [
    "dtype",
    "compute_dtype",
    "get_compute_dtype",
    "set_compute_dtype",
    "resolve_dtype",
    "cast_module",
    "workspace",
    "Workspace",
    "global_workspace",
    "workspace_enabled",
    "set_workspace_enabled",
    "use_workspace",
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "where",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "init",
    "Module",
    "ModuleList",
    "Sequential",
    "Parameter",
    "Linear",
    "Dropout",
    "MLP",
    "Conv1d",
    "MaxPool1d",
    "LayerNorm",
    "BatchNorm1d",
    "kernels",
    "SegmentPlan",
    "PlanCache",
    "plans_enabled",
    "set_plans_enabled",
    "use_plans",
    "gather",
    "scatter_add",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_softmax",
    "segment_count",
    "cross_entropy",
    "nll_loss",
    "bce_with_logits",
    "l2_penalty",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "StepLR",
    "clip_grad_norm",
    "gradcheck",
    "numeric_grad",
]
