"""1-D convolution and pooling over sort-pooled node sequences.

DGCNN reads out a graph as a fixed-length sequence of sorted node
embeddings and applies two 1-D convolutions with a max-pool in between
(Zhang et al., AAAI'18). The first convolution has kernel size and stride
equal to the per-node feature width, so it acts as a learned per-node
projection; the second slides over the resulting node axis.

``Conv1d`` is implemented with an im2col gather (stride-aware window
extraction via ``as_strided``-free fancy indexing) followed by one matmul —
the standard vectorization for convolutions on CPU.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, as_tensor
from repro.utils.rng import RngLike, as_generator

__all__ = ["Conv1d", "MaxPool1d"]


def _window_indices(length: int, kernel: int, stride: int) -> np.ndarray:
    """Start-offset index grid of shape ``(out_len, kernel)`` for im2col."""
    out_len = (length - kernel) // stride + 1
    if out_len <= 0:
        raise ValueError(
            f"kernel {kernel} with stride {stride} does not fit input length {length}"
        )
    starts = np.arange(out_len) * stride
    return starts[:, None] + np.arange(kernel)[None, :]


class Conv1d(Module):
    """1-D convolution over ``(batch, channels, length)`` tensors.

    Parameters
    ----------
    in_channels, out_channels: channel widths.
    kernel_size, stride: window geometry (no padding — DGCNN uses valid
        convolutions over an exactly sized sort-pooled sequence).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        bias: bool = True,
        rng: RngLike = None,
    ):
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise ValueError("conv dimensions must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        gen = as_generator(rng)
        # Stored flattened (in_channels*kernel, out) so forward is one matmul.
        self.weight = Parameter(
            init.xavier_uniform((in_channels * kernel_size, out_channels), rng=gen)
        )
        if bias:
            self.bias: Optional[Parameter] = Parameter(init.zeros((out_channels,)))
        else:
            self.register_parameter("bias", None)
            self.bias = None

    def out_length(self, length: int) -> int:
        """Output length for an input of ``length`` (valid convolution)."""
        return (length - self.kernel_size) // self.stride + 1

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        if x.ndim != 3:
            raise ValueError("Conv1d expects (batch, channels, length)")
        b, c, length = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        idx = _window_indices(length, self.kernel_size, self.stride)  # (L_out, K)
        l_out = idx.shape[0]

        data = x.data  # (B, C, L)
        # im2col: (B, L_out, C, K) -> (B*L_out, C*K)
        cols = data[:, :, idx]  # (B, C, L_out, K)
        cols = cols.transpose(0, 2, 1, 3).reshape(b * l_out, c * self.kernel_size)

        def vjp_cols(g2: np.ndarray) -> np.ndarray:
            # g2: (B*L_out, C*K) -> scatter back into (B, C, L)
            g4 = g2.reshape(b, l_out, c, self.kernel_size).transpose(0, 2, 1, 3)
            gx = np.zeros_like(data)
            np.add.at(gx, (slice(None), slice(None), idx), g4)
            return gx

        cols_t = Tensor._from_op(cols, (x,), (vjp_cols,), "im2col")
        out = cols_t @ self.weight  # (B*L_out, out)
        if self.bias is not None:
            out = out + self.bias
        return out.reshape(b, l_out, self.out_channels).transpose((0, 2, 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Conv1d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride})"
        )


class MaxPool1d(Module):
    """Non-overlapping 1-D max pooling over the length axis.

    A trailing remainder shorter than the kernel is dropped (matching
    PyTorch's default floor behaviour used by the DGCNN reference).
    """

    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def out_length(self, length: int) -> int:
        """Output length for an input of ``length``."""
        return (length - self.kernel_size) // self.stride + 1

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        if x.ndim != 3:
            raise ValueError("MaxPool1d expects (batch, channels, length)")
        b, c, length = x.shape
        idx = _window_indices(length, self.kernel_size, self.stride)  # (L_out, K)
        data = x.data
        windows = data[:, :, idx]  # (B, C, L_out, K)
        arg = windows.argmax(axis=-1)  # (B, C, L_out)
        out = np.take_along_axis(windows, arg[..., None], axis=-1)[..., 0]

        flat_pos = idx[np.arange(idx.shape[0])[None, None, :], arg]  # (B, C, L_out)

        def vjp(g: np.ndarray) -> np.ndarray:
            gx = np.zeros_like(data)
            bi = np.arange(b)[:, None, None]
            ci = np.arange(c)[None, :, None]
            np.add.at(gx, (bi, ci, flat_pos), g)
            return gx

        return Tensor._from_op(out, (x,), (vjp,), "maxpool1d")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MaxPool1d(kernel_size={self.kernel_size}, stride={self.stride})"
