"""Workspace arena: reusable ndarray buffers for the hot compute path.

Steady-state training allocates the same gradient and kernel-scratch
shapes every step — the tape frees a ``(E, H, C)`` buffer only to malloc
an identical one microseconds later. The arena short-circuits that churn
with a free-list pool keyed by ``(shape, dtype)``:

* :class:`Workspace` — the pool. :meth:`~Workspace.acquire` pops a
  recycled buffer (or allocates on miss), :meth:`~Workspace.release`
  returns one. Per-key free lists are capped so a transient odd shape
  cannot pin memory forever.
* **Gradient-buffer donation** — :meth:`Tensor.backward
  <repro.nn.tensor.Tensor.backward>` opens a :class:`GradArena` per
  pass. VJPs allocate their outputs through :func:`grad_buffer`; when a
  node retires (all its consumers' VJPs have run) its gradient buffer is
  donated back to the pool — unless a VJP returned a view of it (the
  alias escapes the tape, so the buffer must live on) or it became a
  leaf ``.grad`` (ownership transfers to the caller). After one warm
  backward the pool serves every subsequent pass allocation-free for
  the pooled shapes.
* **Kernel scratch** — the ``out=`` variants of the SegmentPlan kernels
  draw their internal temporaries from the same pool (see
  ``repro.nn.kernels``).

Reuse never changes numerics: a recycled buffer is always fully
overwritten (or explicitly zeroed) before use, so the float64 default
stays bit-identical with the arena on or off. Hit/miss counts feed the
``nn.workspace.*`` observability counters and the profile CLI's
``dtype`` section.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro import obs

__all__ = [
    "Workspace",
    "GradArena",
    "global_workspace",
    "workspace_enabled",
    "set_workspace_enabled",
    "use_workspace",
    "grad_buffer",
    "current_arena",
    "open_arena",
    "close_arena",
]

_Key = Tuple[Tuple[int, ...], str]


class Workspace:
    """Free-list pool of ndarrays keyed by ``(shape, dtype)``.

    Buffers handed out by :meth:`acquire` are tracked by identity;
    :meth:`release` only ever pools arrays the workspace itself lent
    out, so foreign arrays (leaf grads, user data) can never be
    recycled by accident.
    """

    __slots__ = ("max_per_key", "_free", "_lent", "hits", "misses", "releases")

    def __init__(self, max_per_key: int = 8):
        self.max_per_key = int(max_per_key)
        self._free: Dict[_Key, List[np.ndarray]] = {}
        self._lent: Dict[int, _Key] = {}
        self.hits = 0
        self.misses = 0
        self.releases = 0

    @staticmethod
    def _key(shape, dtype) -> _Key:
        return (tuple(int(s) for s in shape), np.dtype(dtype).str)

    def acquire(self, shape, dtype, *, zero: bool = False) -> np.ndarray:
        """A C-contiguous buffer of ``shape``/``dtype`` (recycled or fresh)."""
        key = self._key(shape, dtype)
        stack = self._free.get(key)
        if stack:
            buf = stack.pop()
            self.hits += 1
            obs.count("nn.workspace.hits")
            if zero:
                buf.fill(0)
        else:
            self.misses += 1
            obs.count("nn.workspace.misses")
            buf = np.zeros(key[0], dtype=dtype) if zero else np.empty(key[0], dtype=dtype)
        self._lent[id(buf)] = key
        return buf

    def release(self, arr: np.ndarray) -> bool:
        """Return a lent buffer to its free list; ``False`` for strangers."""
        key = self._lent.pop(id(arr), None)
        if key is None:
            return False
        stack = self._free.setdefault(key, [])
        if len(stack) < self.max_per_key:
            stack.append(arr)
            self.releases += 1
            return True
        return False

    def forget(self, arr: np.ndarray) -> None:
        """Drop lent-tracking for ``arr`` — its ownership escaped the pool."""
        self._lent.pop(id(arr), None)

    def owns(self, arr: np.ndarray) -> bool:
        return id(arr) in self._lent

    def clear(self) -> None:
        self._free.clear()
        self._lent.clear()

    @property
    def pooled_bytes(self) -> int:
        return sum(b.nbytes for stack in self._free.values() for b in stack)

    @property
    def pooled_buffers(self) -> int:
        return sum(len(stack) for stack in self._free.values())

    def stats(self) -> Dict[str, float]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "releases": self.releases,
            "hit_rate": self.hits / total if total else 0.0,
            "pooled_buffers": self.pooled_buffers,
            "pooled_bytes": self.pooled_bytes,
        }


_POOL = Workspace()
_state = threading.local()


def global_workspace() -> Workspace:
    """The process-wide pool shared by the tape and the kernels."""
    return _POOL


def workspace_enabled() -> bool:
    return getattr(_state, "enabled", True)


def set_workspace_enabled(flag: bool) -> bool:
    """Enable/disable pooling for this thread; returns the previous flag."""
    previous = workspace_enabled()
    _state.enabled = bool(flag)
    return previous


@contextmanager
def use_workspace(flag: bool) -> Iterator[None]:
    """Scoped enable/disable — handy for A/B-ing allocation behavior."""
    previous = set_workspace_enabled(flag)
    try:
        yield
    finally:
        _state.enabled = previous


class GradArena:
    """Per-backward ownership tracker over the shared pool.

    The arena remembers which buffers *this* backward allocated
    (``owned``). Only owned, root-owner (``base is None``) buffers are
    ever donated back; views and foreign arrays pass through untouched.
    """

    __slots__ = ("pool", "_owned")

    def __init__(self, pool: Workspace):
        self.pool = pool
        self._owned: set = set()

    def alloc(self, shape, dtype, *, zero: bool = False) -> np.ndarray:
        buf = self.pool.acquire(shape, dtype, zero=zero)
        self._owned.add(id(buf))
        return buf

    def owns(self, arr: np.ndarray) -> bool:
        return id(arr) in self._owned

    def retire(self, arr: np.ndarray) -> None:
        """Donate ``arr`` back if this backward owns it (no-op otherwise)."""
        if id(arr) in self._owned:
            self._owned.discard(id(arr))
            self.pool.release(arr)

    def disown(self, arr: np.ndarray) -> None:
        """Ownership escapes (leaf ``.grad`` / aliased): never pool it."""
        if id(arr) in self._owned:
            self._owned.discard(id(arr))
            self.pool.forget(arr)

    def close(self) -> None:
        """Forget whatever is still owned (e.g. a VJP raised mid-pass)."""
        for ident in self._owned:
            self.pool._lent.pop(ident, None)
        self._owned.clear()


def current_arena() -> Optional[GradArena]:
    """The arena of the backward pass running on this thread, if any."""
    return getattr(_state, "arena", None)


def open_arena() -> Optional[GradArena]:
    """Begin a donation scope for a backward pass (None when disabled).

    Backward passes do not nest on one thread, so a second open while
    one is active simply declines (returns None) and the outer arena
    keeps collecting.
    """
    if not workspace_enabled() or current_arena() is not None:
        return None
    arena = GradArena(_POOL)
    _state.arena = arena
    return arena


def close_arena(arena: Optional[GradArena]) -> None:
    if arena is None:
        return
    arena.close()
    _state.arena = None


def grad_buffer(shape, dtype, *, zero: bool = False) -> np.ndarray:
    """Allocate a VJP output buffer, pooled when a backward arena is open.

    Ops call this for gradient-shaped outputs they fully overwrite (or
    need zeroed). Outside a backward pass it is a plain allocation.
    """
    arena = current_arena()
    if arena is not None:
        return arena.alloc(shape, dtype, zero=zero)
    return np.zeros(shape, dtype=dtype) if zero else np.empty(shape, dtype=dtype)
