"""Batch-serving DataLoader with optional multiprocessing extraction.

The loader owns the full data path of the SEAL pipeline: a
:class:`~repro.data.samplers.Sampler` decides the index batches, missing
subgraphs are extracted (serially, or by a worker pool when
``num_workers > 0``) into the dataset's packed
:class:`~repro.data.store.SubgraphStore`, and collation slices the store
directly into preallocated :class:`~repro.graph.batch.GraphBatch`
arrays.

Determinism guarantee
---------------------
Extraction is keyed by ``(dataset seed, link index)`` — see
:mod:`repro.data.extraction` — and collation always happens in the
parent process in sampler order, so ``num_workers=N`` produces streams
bit-identical to ``num_workers=0`` under the same seed. Workers only
change *when* a subgraph is computed, never *what* it contains.

Parallel mode dispatches chunks of missing links to a persistent
``multiprocessing`` pool in first-need order, keeps at most
``num_workers * prefetch_factor`` chunks in flight (a bounded prefetch
queue), and falls back to serial extraction — with a warning, never an
error — when the platform cannot start workers or a worker crashes.

Zero-copy transport (:mod:`repro.store`)
----------------------------------------
Two copy chains of the original design are gone. *Inbound*: when the
task's graph is path-backed (``Graph.save``/``Graph.open``), workers
receive the storage path instead of a pickled graph and mmap the arrays
read-only — one physical copy of the graph no matter how many workers.
*Outbound*: extracted chunks travel through a
:class:`~repro.store.SampleRing` — workers pack samples columnarly into
a shared-memory slot and return a tiny descriptor; the parent adopts
zero-copy views and frees the slot. Chunks that outgrow their slot (or
hosts without shared memory) fall back to the original pickle path, so
the ring is purely an optimization: ordering and bytes are identical
either way.

Loader phases are traced through :mod:`repro.obs` as ``extraction``
(serial misses), ``queue-wait`` (parent blocked on worker results) and
``collate``, which is what ``python -m repro profile --workers N``
reports as the loader breakdown.
"""

from __future__ import annotations

import copy
import os
from collections import deque
from multiprocessing import TimeoutError as MpTimeoutError
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.data.samplers import Sampler, SequentialSampler, ShuffleSampler
from repro.data.store import PackedSubgraph, SubgraphStore
from repro.graph.batch import GraphBatch
from repro.nn.kernels import PlanCache
from repro.store.ring import SampleRing
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike

__all__ = ["DataLoader", "collate_from_store", "usable_cores", "warm"]

logger = get_logger("data.loader")


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# One-shot guard for the worker-degrade warning: the condition is a
# property of the host, so repeating it once per DataLoader is noise.
_DEGRADE_WARNED = False

# -- worker-side plumbing ---------------------------------------------- #
# The pool initializer stashes the (task, seed) payload in a module
# global. When the task's graph is path-backed, the payload carries the
# storage path and the worker mmaps the arrays read-only — the graph is
# never pickled and exists once in physical memory. Only in-memory-only
# graphs still ride the pickle path (free under fork, once-per-worker
# under spawn).

_WORKER_STATE: Optional[tuple] = None
_WORKER_RING: Optional[SampleRing] = None


def _worker_init(payload: tuple) -> None:
    global _WORKER_STATE, _WORKER_RING
    task, graph_path, seed, ring_meta = payload
    if graph_path is not None:
        from repro.graph.structure import Graph

        task.graph = Graph.open(graph_path, mmap=True)
    _WORKER_STATE = (task, seed)
    _WORKER_RING = None if ring_meta is None else SampleRing.attach(*ring_meta)


def _worker_extract(chunk: List[int], slot: int = -1):
    """Extract a chunk of links inside a worker process.

    Uses the batched engine (one multi-source BFS sweep per chunk);
    per-link streams keep results independent of the chunking, so worker
    output stays bit-identical to serial extraction.

    With a ring slot assigned (``slot >= 0``) the samples are packed
    into shared memory and only a descriptor returns; a chunk too big
    for its slot — or a loader without a ring — returns the samples by
    value (the pickle fallback).
    """
    from repro.data.extraction import build_packed_samples

    task, seed = _WORKER_STATE
    samples = build_packed_samples(task, seed, chunk)
    if slot >= 0 and _WORKER_RING is not None:
        header = _WORKER_RING.write(slot, samples)
        if header is not None:
            return ("shm", slot, header)
    return ("pkl", slot, samples)


def collate_from_store(
    store: SubgraphStore, indices: Sequence[int], *, edge_attr_dim: int = 0
) -> GraphBatch:
    """Fuse stored subgraphs into one block-diagonal batch by slice-copy.

    Equivalent to :func:`repro.graph.batch.collate` over the materialized
    graphs, but reads the packed arrays directly: output buffers are
    preallocated once and filled per graph with O(1)-lookup slices.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size == 0:
        raise ValueError("cannot collate an empty batch")
    if edge_attr_dim and store.edge_attr_dim and store.edge_attr_dim != edge_attr_dim:
        raise ValueError(
            f"stored edge_attr width {store.edge_attr_dim} != requested {edge_attr_dim}"
        )
    with obs.trace("collate"):
        n_counts = store.node_count[indices]
        e_counts = store.edge_count[indices]
        n_total = int(n_counts.sum())
        e_total = int(e_counts.sum())
        node_off = np.concatenate([[0], np.cumsum(n_counts)[:-1]])

        edge_index = np.empty((2, e_total), dtype=np.int64)
        node_features = np.empty((n_total, store.feature_dim), dtype=store.float_dtype)
        edge_attr = np.zeros((e_total, edge_attr_dim), dtype=store.float_dtype)
        batch = np.repeat(np.arange(len(indices), dtype=np.int64), n_counts)

        copy_attr = bool(edge_attr_dim and store.edge_attr is not None)
        no = 0
        eo = 0
        for j, i in enumerate(indices):
            ns, nc = int(store.node_start[i]), int(n_counts[j])
            es, ec = int(store.edge_start[i]), int(e_counts[j])
            edge_index[:, eo : eo + ec] = store.edge_index[:, es : es + ec] + node_off[j]
            node_features[no : no + nc] = store.features[ns : ns + nc]
            if copy_attr:
                edge_attr[eo : eo + ec] = store.edge_attr[es : es + ec]
            no += nc
            eo += ec

        # The store is append-only within a generation, so the same link
        # indices always collate to array-identical batches: segment
        # plans built for one epoch's batch are valid for every later
        # epoch's. The generation salt keeps plans from surviving a
        # clear()/evict(), after which the same indices may name
        # different subgraphs (e.g. re-extracted against a newer
        # streaming snapshot). The PlanCache itself is lazy — a cache
        # miss costs only the (cheap) shell; the argsorts happen on
        # first use inside the model.
        key = store.plan_salt + indices.tobytes()
        plans = store.plan_lookup(key)
        if plans is None:
            plans = PlanCache(
                edge_index, n_total, batch=batch, num_graphs=len(indices)
            )
            store.plan_store(key, plans)
            obs.count("data.store.plan_cache.misses")
        else:
            obs.count("data.store.plan_cache.hits")
        out = GraphBatch(
            edge_index=edge_index,
            node_features=node_features,
            edge_attr=edge_attr,
            batch=batch,
            num_graphs=len(indices),
            _plan_cache=plans,
        )
    obs.count("graph.collate.batches")
    obs.count("graph.collate.graphs", float(out.num_graphs))
    obs.count("graph.collate.nodes", float(out.num_nodes))
    return out


class DataLoader:
    """Serve ``(GraphBatch, labels)`` mini-batches from a SEAL dataset.

    Parameters
    ----------
    dataset: a :class:`~repro.seal.SEALDataset` (or any object exposing
        ``task``, ``store``, ``rng_seed``, ``ensure(i)`` and
        ``adopt(sample)``).
    indices: link indices to serve (default: the whole dataset). Ignored
        when an explicit ``sampler`` is given.
    batch_size: target batch size (ignored when ``sampler`` is given).
    sampler: explicit :class:`~repro.data.samplers.Sampler`; overrides
        ``indices``/``batch_size``/``shuffle``/``rng``.
    shuffle: build a :class:`ShuffleSampler` instead of sequential.
    rng: seed/stream for the shuffle sampler.
    num_workers: 0 = extract in-process; N > 0 = extract cache misses in
        an N-process pool with chunked dispatch and bounded prefetch.
        When the process can only run on one core, ``num_workers`` is
        auto-degraded to 0 — ``results/BENCH_loader.json`` measured the
        pool as a net slowdown there (speedup 0.853×) — unless
        ``force_workers`` is set.
    prefetch_factor: chunks kept in flight per worker.
    chunk_size: links per worker chunk (default: an even split that keeps
        every worker busy ``2 * prefetch_factor`` times over).
    force_workers: keep the requested ``num_workers`` even on a
        single-core host (tests and benchmarks that exercise the pool
        itself).
    worker_timeout: seconds the parent waits for one worker chunk before
        declaring the pool hung and falling back to serial extraction
        (a *hung* — not dead — worker would otherwise block the epoch
        forever). ``None`` waits unboundedly.
    use_ring: move worker results through a shared-memory
        :class:`~repro.store.SampleRing` instead of pickling them
        through the pool's result pipe. Purely an optimization — any
        chunk that does not fit its slot falls back to the pickle path.
    ring_slot_bytes: capacity of each ring slot (default 4 MiB; the
        ring holds ``num_workers * prefetch_factor`` slots, one per
        in-flight chunk).
    """

    def __init__(
        self,
        dataset,
        indices: Optional[Sequence[int]] = None,
        batch_size: int = 32,
        *,
        sampler: Optional[Sampler] = None,
        shuffle: bool = False,
        rng: RngLike = None,
        num_workers: int = 0,
        prefetch_factor: int = 2,
        chunk_size: Optional[int] = None,
        force_workers: bool = False,
        worker_timeout: Optional[float] = 60.0,
        use_ring: bool = True,
        ring_slot_bytes: int = 4 << 20,
    ):
        if num_workers < 0:
            raise ValueError("num_workers must be non-negative")
        if prefetch_factor < 1:
            raise ValueError("prefetch_factor must be >= 1")
        if worker_timeout is not None and worker_timeout <= 0:
            raise ValueError("worker_timeout must be positive (or None)")
        if ring_slot_bytes < 64:
            raise ValueError("ring_slot_bytes must be at least 64")
        if num_workers > 0 and not force_workers and usable_cores() <= 1:
            global _DEGRADE_WARNED
            obs.count("data.loader.workers_degraded")
            if not _DEGRADE_WARNED:
                _DEGRADE_WARNED = True
                logger.warning(
                    "num_workers=%d requested but only 1 usable core: worker "
                    "processes are a measured net slowdown here, degrading to "
                    "num_workers=0 (pass force_workers=True to override)",
                    num_workers,
                )
            num_workers = 0
        self.dataset = dataset
        if sampler is None:
            idx = np.arange(len(dataset)) if indices is None else indices
            if shuffle:
                sampler = ShuffleSampler(idx, batch_size, rng=rng)
            else:
                sampler = SequentialSampler(idx, batch_size)
        self.sampler = sampler
        self.num_workers = int(num_workers)
        self.prefetch_factor = int(prefetch_factor)
        self.chunk_size = chunk_size
        self.worker_timeout = worker_timeout
        self.use_ring = bool(use_ring)
        self.ring_slot_bytes = int(ring_slot_bytes)
        self._pool = None
        self._pool_broken = False
        self._ring: Optional[SampleRing] = None
        self._ring_broken = False

    # ------------------------------------------------------------------ #
    # sizing / context management
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.sampler)

    def __enter__(self) -> "DataLoader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool and ring (idempotent; serial: no-op)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._ring is not None:
            self._ring.close()
            self._ring = None

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # iteration
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Tuple[GraphBatch, np.ndarray]]:
        task = self.dataset.task
        for batch_idx in self._filled_batches(list(self.sampler)):
            yield (
                collate_from_store(
                    self.dataset.store, batch_idx, edge_attr_dim=task.edge_attr_dim
                ),
                task.labels[batch_idx],
            )

    def warm(self, indices: Optional[Sequence[int]] = None) -> "DataLoader":
        """Eagerly extract ``indices`` (default: the sampler's index set).

        Uses a sequential pass independent of the sampler, so warming a
        shuffle loader does not consume its permutation stream. Parallel
        loaders warm with the worker pool — the replacement for the
        deprecated ``SEALDataset.prepare()`` that scales with cores.
        """
        order = np.asarray(
            self.sampler.indices if indices is None else indices, dtype=np.int64
        )
        chunk = max(int(getattr(self.sampler, "batch_size", 64)), 1)
        batches = [order[s : s + chunk] for s in range(0, len(order), chunk)]
        for _ in self._filled_batches(batches):
            pass
        return self

    # ------------------------------------------------------------------ #
    # extraction scheduling
    # ------------------------------------------------------------------ #
    def _filled_batches(self, batches: List[np.ndarray]) -> Iterator[np.ndarray]:
        """Yield each index batch once every one of its links is stored."""
        if self.num_workers > 0 and not self._pool_broken:
            yield from self._fill_parallel(batches)
        else:
            yield from self._fill_serial(batches)

    def _fill_serial(self, batches: List[np.ndarray]) -> Iterator[np.ndarray]:
        # Batch-level extraction when the dataset supports it (one
        # multi-source sweep per batch); per-link loop otherwise.
        ensure_many = getattr(self.dataset, "ensure_many", None)
        if ensure_many is not None:
            for batch_idx in batches:
                ensure_many(batch_idx)
                yield batch_idx
            return
        ensure = self.dataset.ensure
        for batch_idx in batches:
            for i in batch_idx:
                ensure(int(i))
            yield batch_idx

    def _task_payload(self) -> Tuple[object, Optional[str]]:
        """``(task, graph_path)`` the workers will be initialized with.

        A path-backed graph (saved or mmap-opened) is stripped from the
        payload — workers re-open the storage directory themselves, so
        the graph arrays are never duplicated into the worker payloads.
        In-memory-only graphs keep the original pickled-task fallback.
        """
        task = self.dataset.task
        path = getattr(getattr(task, "graph", None), "storage_path", None)
        if path is None:
            obs.count("data.loader.payload_pickled")
            return task, None
        light = copy.copy(task)
        light.graph = None
        obs.count("data.loader.payload_path")
        return light, str(path)

    def _ensure_ring(self) -> Optional[SampleRing]:
        if self._ring is None and self.use_ring and not self._ring_broken:
            slots = self.num_workers * self.prefetch_factor
            try:
                self._ring = SampleRing.create(slots, self.ring_slot_bytes)
            except Exception as exc:  # pragma: no cover - platform dependent
                self._ring_broken = True
                logger.warning(
                    "shared-memory ring unavailable (%s); worker batches "
                    "will be pickled instead",
                    exc,
                )
        return self._ring

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing as mp

            ctx = mp.get_context()
            ring = self._ensure_ring()
            task, graph_path = self._task_payload()
            payload = (
                task,
                graph_path,
                self.dataset.rng_seed,
                None if ring is None else ring.meta,
            )
            self._pool = ctx.Pool(
                self.num_workers, initializer=_worker_init, initargs=(payload,)
            )
        return self._pool

    def _fill_parallel(self, batches: List[np.ndarray]) -> Iterator[np.ndarray]:
        store = self.dataset.store
        missing = store.missing(np.concatenate(batches)) if batches else np.empty(0, np.int64)
        if missing.size == 0:
            yield from self._fill_serial(batches)
            return
        try:
            pool = self._ensure_pool()
        except Exception as exc:  # pragma: no cover - platform dependent
            logger.warning("worker pool unavailable (%s); extracting serially", exc)
            self._mark_broken()
            yield from self._fill_serial(batches)
            return

        chunk = self.chunk_size or max(
            1, -(-len(missing) // (self.num_workers * self.prefetch_factor * 2))
        )
        chunks = deque(
            missing[s : s + chunk].tolist() for s in range(0, len(missing), chunk)
        )
        obs.count("data.loader.parallel_links", float(len(missing)))
        pending: deque = deque()
        max_inflight = self.num_workers * self.prefetch_factor
        fresh = set(missing.tolist())
        ring = self._ring

        def pump() -> None:
            while chunks and len(pending) < max_inflight:
                slot = -1 if ring is None else ring.acquire()
                pending.append(
                    pool.apply_async(_worker_extract, (chunks.popleft(), slot))
                )

        def decode(payload):
            """Worker result -> (samples, slot to release or None)."""
            kind, slot, body = payload
            slot = slot if slot >= 0 else None
            if kind == "shm":
                obs.count("store.ring.batches")
                return ring.read(slot, body), slot
            if ring is not None:
                obs.count("store.ring.fallbacks")
            return body, slot

        pump()
        for batch_idx in batches:
            needed = [int(i) for i in batch_idx]
            # Once broken, never consult `pending` again — results of a
            # terminated pool may never resolve and get() would block.
            while not self._pool_broken and any(i not in store for i in needed):
                if not pending:
                    # Dispatch exhausted but links still missing (worker
                    # failure path) — finish this epoch serially.
                    self._mark_broken()
                    break
                result = pending.popleft()
                try:
                    with obs.trace("queue-wait"):
                        # Bounded wait: a hung (not dead) worker must not
                        # block the epoch forever — time out and finish
                        # through the serial path instead.
                        samples, slot = decode(result.get(self.worker_timeout))
                except MpTimeoutError:
                    obs.count("data.loader.worker_timeouts")
                    logger.warning(
                        "extraction worker produced nothing for %.1fs; "
                        "assuming it hung and falling back to serial",
                        self.worker_timeout,
                    )
                    self._mark_broken()
                    break
                except Exception as exc:
                    logger.warning(
                        "extraction worker failed (%s); falling back to serial", exc
                    )
                    self._mark_broken()
                    break
                for sample in samples:
                    # adopt() copies into the dataset's store, so ring
                    # views are safe to recycle right after this loop.
                    self.dataset.adopt(sample)
                if slot is not None:
                    ring.release(slot)
                pump()
            if self._pool_broken:
                for i in needed:
                    fresh.discard(i)
                    self.dataset.ensure(i)
            else:
                for i in needed:
                    # First access of a worker-extracted link was already
                    # counted as a miss by adopt(); later accesses are hits.
                    if i in fresh:
                        fresh.discard(i)
                    else:
                        self.dataset.ensure(i)
            yield batch_idx

    def _mark_broken(self) -> None:
        self._pool_broken = True
        self.close()


def warm(dataset, *, num_workers: int = 0, prefetch_factor: int = 2) -> None:
    """Eagerly extract every link of ``dataset`` into its store.

    The drop-in replacement for the deprecated ``SEALDataset.prepare()``;
    with ``num_workers > 0`` the extraction fans out over a worker pool.
    """
    with DataLoader(
        dataset, num_workers=num_workers, prefetch_factor=prefetch_factor, batch_size=64
    ) as loader:
        loader.warm()
