"""Per-link subgraph + feature construction, shared by serial and worker paths.

:func:`build_packed_sample` is the single function that turns a link
index into its packed SEAL sample (enclosing subgraph + node-attribute
matrix). The extraction stream is derived from the dataset seed *and the
link index*, never from shared mutable state, so the same link produces
bit-identical arrays no matter which process builds it or in what order
— the property the parallel :class:`repro.data.DataLoader` relies on to
guarantee worker-count-independent results.

This module deliberately avoids importing :mod:`repro.seal.dataset`
(which imports :mod:`repro.data`); it only needs the duck-typed task
fields listed in :func:`build_packed_sample`.
"""

from __future__ import annotations

from repro.data.store import PackedSubgraph
from repro.graph.subgraph import extract_enclosing_subgraph
from repro.seal.features import build_node_features
from repro.utils.rng import RngLike, derive

__all__ = ["build_packed_sample"]


def build_packed_sample(task, seed: RngLike, index: int) -> PackedSubgraph:
    """Extract link ``index`` of ``task`` into a :class:`PackedSubgraph`.

    ``task`` is any object with the :class:`repro.seal.LinkTask` fields
    ``graph``, ``pairs``, ``name``, ``num_hops``, ``subgraph_mode``,
    ``max_subgraph_nodes`` and ``feature_config``.
    """
    u, v = task.pairs[index]
    sub = extract_enclosing_subgraph(
        task.graph,
        int(u),
        int(v),
        k=task.num_hops,
        mode=task.subgraph_mode,
        max_nodes=task.max_subgraph_nodes,
        rng=derive(seed, "seal-extract", task.name, str(int(index))),
    )
    feats = build_node_features(sub, task.feature_config)
    g = sub.graph
    return PackedSubgraph(
        index=int(index),
        num_nodes=g.num_nodes,
        num_edges=g.num_edges,
        edge_index=g.edge_index,
        features=feats,
        node_type=g.node_type,
        edge_type=g.edge_type,
        edge_attr=g.edge_attr,
        node_features=g.node_features,
    )
