"""Per-link and batched subgraph + feature construction.

:func:`build_packed_sample` turns one link index into its packed SEAL
sample (enclosing subgraph + node-attribute matrix);
:func:`build_packed_samples` does the same for a whole batch of links
through the batched extraction engine (:mod:`repro.graph.bulk`) — one
multi-source BFS sweep and one columnar induce/label/pack pass instead
of per-link Python — falling back to the per-link loop when batched
extraction is disabled (``repro.graph.bulk.set_bulk_enabled(False)``).

Either way, the extraction stream of link ``i`` is derived from the
dataset seed *and the link index*, never from shared mutable state, so
the same link produces bit-identical arrays no matter which process
builds it, in what order, or in which batch grouping — the property the
parallel :class:`repro.data.DataLoader` relies on to guarantee
worker-count-independent results, now extended to "batched and per-link
extraction are interchangeable" (asserted by
``tests/graph/test_bulk_extraction.py``).

This module deliberately avoids importing :mod:`repro.seal.dataset`
(which imports :mod:`repro.data`); it only needs the duck-typed task
fields listed in :func:`build_packed_sample`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro import obs
from repro.data.store import PackedSubgraph
from repro.graph.bulk import bulk_enabled, extract_enclosing_subgraphs
from repro.graph.subgraph import extract_enclosing_subgraph
from repro.seal.features import assemble_node_features, build_node_features
from repro.seal.labeling import drnl_labels_from_distances
from repro.utils.rng import RngLike, derive

__all__ = ["build_packed_sample", "build_packed_samples"]


def _link_rng(task, seed: RngLike, index: int):
    """The per-link extraction stream (same in every process and path).

    The stream key defaults to the link's *index* — right for offline
    tasks, whose pair table is fixed up front. A task may instead define
    ``link_key(index) -> str`` to key the stream on the link's *content*
    (the online scorer keys on the ``"u:v"`` pair itself), so the same
    pair gets a bit-identical subgraph no matter in which order requests
    arrived and hence which slot it landed in.
    """
    key_fn = getattr(task, "link_key", None)
    key = key_fn(int(index)) if key_fn is not None else str(int(index))
    return derive(seed, "seal-extract", task.name, key)


def build_packed_sample(task, seed: RngLike, index: int) -> PackedSubgraph:
    """Extract link ``index`` of ``task`` into a :class:`PackedSubgraph`.

    ``task`` is any object with the :class:`repro.seal.LinkTask` fields
    ``graph``, ``pairs``, ``name``, ``num_hops``, ``subgraph_mode``,
    ``max_subgraph_nodes`` and ``feature_config``.
    """
    u, v = task.pairs[index]
    sub = extract_enclosing_subgraph(
        task.graph,
        int(u),
        int(v),
        k=task.num_hops,
        mode=task.subgraph_mode,
        max_nodes=task.max_subgraph_nodes,
        rng=_link_rng(task, seed, index),
    )
    feats = build_node_features(sub, task.feature_config)
    g = sub.graph
    obs.count("extraction.fallback.links")
    if getattr(task.graph, "is_mmap", False):
        obs.count("store.mmap.extracted_links")
    return PackedSubgraph(
        index=int(index),
        num_nodes=g.num_nodes,
        num_edges=g.num_edges,
        edge_index=g.edge_index,
        features=feats,
        node_type=g.node_type,
        edge_type=g.edge_type,
        edge_attr=g.edge_attr,
        node_features=g.node_features,
    )


def build_packed_samples(
    task, seed: RngLike, indices: Sequence[int]
) -> List[PackedSubgraph]:
    """Extract a batch of links into :class:`PackedSubgraph` samples.

    Bit-identical to ``[build_packed_sample(task, seed, i) for i in
    indices]`` — with batched extraction enabled (the default) the whole
    batch goes through one :func:`~repro.graph.bulk.extract_enclosing_subgraphs`
    sweep plus a single fused labeling/feature pass over the packed rows.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size == 0:
        return []
    if not bulk_enabled():
        return [build_packed_sample(task, seed, int(i)) for i in indices]

    graph = task.graph
    config = task.feature_config
    bulk = extract_enclosing_subgraphs(
        graph,
        task.pairs[indices],
        k=task.num_hops,
        mode=task.subgraph_mode,
        max_nodes=task.max_subgraph_nodes,
        rng_factory=lambda pos: _link_rng(task, seed, int(indices[pos])),
        with_label_distances=config.use_drnl,
    )

    with obs.trace("extract.pack"):
        node_map = bulk.node_map
        node_type = graph.node_type[node_map]
        node_features = (
            None if graph.node_features is None else graph.node_features[node_map]
        )
        edge_type = graph.edge_type[bulk.edge_ids]
        edge_attr = None if graph.edge_attr is None else graph.edge_attr[bulk.edge_ids]
        labels = None
        if config.use_drnl:
            src_rows = bulk.node_offsets[:-1]
            labels = drnl_labels_from_distances(
                bulk.dist_src, bulk.dist_dst, src_rows, src_rows + 1
            )
        features = assemble_node_features(
            config,
            node_type=node_type,
            drnl=labels,
            node_features=node_features,
            node_map=node_map,
        )

        samples: List[PackedSubgraph] = []
        no = bulk.node_offsets
        eo = bulk.edge_offsets
        for pos, index in enumerate(indices):
            ns, ne = int(no[pos]), int(no[pos + 1])
            es, ee = int(eo[pos]), int(eo[pos + 1])
            samples.append(
                PackedSubgraph(
                    index=int(index),
                    num_nodes=ne - ns,
                    num_edges=ee - es,
                    edge_index=bulk.edge_index[:, es:ee],
                    features=features[ns:ne],
                    node_type=node_type[ns:ne],
                    edge_type=edge_type[es:ee],
                    edge_attr=None if edge_attr is None else edge_attr[es:ee],
                    node_features=(
                        None if node_features is None else node_features[ns:ne]
                    ),
                )
            )
    return samples
