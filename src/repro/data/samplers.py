"""Batch samplers: the index-ordering half of the data-loading layer.

A sampler decides *which* link indices form each mini-batch and in what
order; the :class:`~repro.data.DataLoader` turns those index batches
into collated :class:`~repro.graph.batch.GraphBatch` objects. Separating
the two (the PyG/DGL architecture) lets training policies — shuffling,
class-balanced batching for the skewed KG label distributions — compose
with any extraction backend, serial or parallel.

Every sampler is re-iterable: each ``__iter__`` yields one full epoch.
Stochastic samplers hold a generator created once from their ``rng``
argument (via :func:`repro.utils.rng.ensure_rng`), so consecutive epochs
draw consecutive permutations from one reproducible stream — iterate a
fresh sampler with the same seed and you replay the same epochs.
"""

from __future__ import annotations

from typing import Iterator, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.nn.dtype import FLOAT64

from repro.utils.rng import RngLike, ensure_rng

__all__ = [
    "Sampler",
    "SequentialSampler",
    "ShardedBatchSampler",
    "ShuffleSampler",
    "StratifiedBatchSampler",
]


@runtime_checkable
class Sampler(Protocol):
    """Protocol: an iterable of index batches over a fixed index set."""

    indices: np.ndarray  # every index the sampler serves, in canonical order

    def __iter__(self) -> Iterator[np.ndarray]:
        """Yield one epoch of ``(batch_size,)``-or-smaller index arrays."""
        ...

    def __len__(self) -> int:
        """Number of batches per epoch."""
        ...


def _check_indices(indices: Sequence[int]) -> np.ndarray:
    arr = np.asarray(indices, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError("indices must be one-dimensional")
    return arr


def _check_batch_size(batch_size: int) -> int:
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    return int(batch_size)


def _chunk(order: np.ndarray, batch_size: int) -> Iterator[np.ndarray]:
    for start in range(0, len(order), batch_size):
        yield order[start : start + batch_size]


class SequentialSampler:
    """Serve ``indices`` in their given order, chunked into batches."""

    def __init__(self, indices: Sequence[int], batch_size: int):
        self.indices = _check_indices(indices)
        self.batch_size = _check_batch_size(batch_size)

    def __iter__(self) -> Iterator[np.ndarray]:
        return _chunk(self.indices, self.batch_size)

    def __len__(self) -> int:
        return -(-len(self.indices) // self.batch_size)


class ShuffleSampler:
    """Freshly permute ``indices`` each epoch (seeded, reproducible).

    The permutation stream advances across epochs exactly as the legacy
    ``SEALDataset.iter_batches(shuffle=True, rng=gen)`` loop did, so a
    trainer switching to this sampler reproduces its old batch order
    bit-for-bit under the same seed.
    """

    def __init__(self, indices: Sequence[int], batch_size: int, *, rng: RngLike = None):
        self.indices = _check_indices(indices)
        self.batch_size = _check_batch_size(batch_size)
        self._gen = ensure_rng(rng)

    def __iter__(self) -> Iterator[np.ndarray]:
        return _chunk(self._gen.permutation(self.indices), self.batch_size)

    def __len__(self) -> int:
        return -(-len(self.indices) // self.batch_size)


class ShardedBatchSampler:
    """One shard's view of a globally shuffled epoch (distributed training).

    Draws the *same* permutation stream over the full index set as
    :class:`ShuffleSampler` would, chunks it into global batches, and
    yields each batch filtered down to the links in ``owned`` — order
    preserved. K shards built from the same seed therefore partition
    every global batch exactly, which is how the data-parallel trainer
    (:mod:`repro.distributed`) keeps its per-step gradient groups
    aligned with single-process batch order.

    Parameters
    ----------
    indices: the *global* index set (identical across shards).
    batch_size: the global batch size.
    owned: global indices this shard owns (``Shard.owned_links``).
    rng: seed for the shared permutation stream — must match across
        shards (and match the single-process baseline) for alignment.
    drop_empty:
        when True (default) global batches containing none of this
        shard's links are skipped — the mode a standalone
        :class:`~repro.data.DataLoader` needs, since it cannot collate
        an empty batch. The trainer keeps step alignment itself and
        writes a zero gradient slab for empty groups.
    """

    def __init__(
        self,
        indices: Sequence[int],
        batch_size: int,
        *,
        owned: Sequence[int],
        rng: RngLike = None,
        drop_empty: bool = True,
    ):
        self.indices = _check_indices(indices)
        self.batch_size = _check_batch_size(batch_size)
        self.owned = _check_indices(owned)
        self.drop_empty = bool(drop_empty)
        hi = int(max(self.indices.max(initial=-1), self.owned.max(initial=-1)))
        mask = np.zeros(hi + 1, dtype=bool)
        mask[self.owned] = True
        self._owned_mask = mask
        self._gen = ensure_rng(rng)

    def __iter__(self) -> Iterator[np.ndarray]:
        for batch in _chunk(self._gen.permutation(self.indices), self.batch_size):
            mine = batch[self._owned_mask[batch]]
            if mine.size or not self.drop_empty:
                yield mine

    def __len__(self) -> int:
        """Global step count (an upper bound when ``drop_empty``)."""
        return -(-len(self.indices) // self.batch_size)


class StratifiedBatchSampler:
    """Class-balanced batches: every batch mirrors the global label mix.

    Within each class the members are shuffled per epoch, then each class
    is spread evenly over the epoch by assigning member ``j`` of an
    ``m``-member class the position key ``(j + 0.5) / m`` and stably
    sorting all keys. Every batch of size ``b`` then carries
    ``round(b * class_fraction)`` ±1 members of each class — minority
    classes (BioKG's scarce relations) appear throughout the epoch
    instead of clumping into a few batches.

    Parameters
    ----------
    indices: link indices to serve.
    labels: class label of each entry of ``indices`` (aligned, same length).
    batch_size: target batch size.
    rng: seed for the per-class shuffles.
    """

    def __init__(
        self,
        indices: Sequence[int],
        labels: Sequence[int],
        batch_size: int,
        *,
        rng: RngLike = None,
    ):
        self.indices = _check_indices(indices)
        self.labels = np.asarray(labels, dtype=np.int64)
        if self.labels.shape != self.indices.shape:
            raise ValueError("labels must align one-to-one with indices")
        self.batch_size = _check_batch_size(batch_size)
        self._gen = ensure_rng(rng)

    def __iter__(self) -> Iterator[np.ndarray]:
        n = len(self.indices)
        keys = np.empty(n, dtype=FLOAT64)
        order = np.empty(n, dtype=np.int64)
        pos = 0
        for c in np.unique(self.labels):
            members = np.nonzero(self.labels == c)[0]
            members = self._gen.permutation(members)
            m = len(members)
            order[pos : pos + m] = members
            keys[pos : pos + m] = (np.arange(m) + 0.5) / m
            pos += m
        interleaved = self.indices[order[np.argsort(keys, kind="stable")]]
        return _chunk(interleaved, self.batch_size)

    def __len__(self) -> int:
        return -(-len(self.indices) // self.batch_size)
