"""repro.data — the data-loading layer of the SEAL pipeline.

Splits the data path into three replaceable pieces, the PyG/DGL loader
architecture adapted to per-link enclosing-subgraph workloads:

* **Samplers** (:mod:`repro.data.samplers`) order link indices into
  batches: sequential, seeded shuffle, or class-stratified.
* **SubgraphStore** (:mod:`repro.data.store`) holds every extracted
  subgraph in packed contiguous arrays with O(1) per-link slicing.
* **DataLoader** (:mod:`repro.data.loader`) drives extraction (serially
  or via a ``multiprocessing`` worker pool with bounded prefetch) and
  collates store slices into :class:`~repro.graph.batch.GraphBatch`
  objects. ``num_workers=N`` is bit-identical to ``num_workers=0``
  under the same seed.

Every SEAL consumer — trainer, evaluator, inference, cross-validation,
tuners, experiment runner — feeds from this layer;
``SEALDataset.iter_batches``/``prepare()`` remain only as deprecated
shims over it.
"""

from repro.data.extraction import build_packed_sample, build_packed_samples
from repro.data.loader import DataLoader, collate_from_store, warm
from repro.data.samplers import (
    Sampler,
    SequentialSampler,
    ShardedBatchSampler,
    ShuffleSampler,
    StratifiedBatchSampler,
)
from repro.data.store import PackedSubgraph, StoreInfo, SubgraphStore

__all__ = [
    "Sampler",
    "SequentialSampler",
    "ShardedBatchSampler",
    "ShuffleSampler",
    "StratifiedBatchSampler",
    "SubgraphStore",
    "PackedSubgraph",
    "StoreInfo",
    "DataLoader",
    "collate_from_store",
    "warm",
    "build_packed_sample",
    "build_packed_samples",
]
