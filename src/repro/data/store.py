"""Packed columnar storage of extracted SEAL subgraphs.

:class:`SubgraphStore` replaces the per-link ``(Graph, features)`` object
cache with CSR-style contiguous arrays: node-axis data (features, node
types, explicit node features) and edge-axis data (edge index, edge
types, edge attributes) of *all* cached subgraphs live in a handful of
large NumPy buffers, and each link owns a ``(start, count)`` slice into
them. This cuts the per-subgraph Python object overhead (one tiny
``Graph`` plus several small arrays per link) to a few int64 entries and
makes batch collation a pure slice-copy, no object traversal.

Links may be inserted in any order — the offset tables are keyed by link
index, so lazily extracted datasets and parallel workers can fill the
store out of order. Buffers grow by doubling; previously returned views
stay valid (they alias the old buffer, whose contents are immutable by
convention).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, NamedTuple, Optional, Sequence

import numpy as np

from repro.nn.dtype import get_compute_dtype, resolve_dtype

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (graph -> nn)
    from repro.nn.kernels import PlanCache

__all__ = ["PackedSubgraph", "StoreInfo", "SubgraphStore"]


class PackedSubgraph(NamedTuple):
    """One link's subgraph as flat arrays (views into the store's buffers).

    ``edge_index`` uses subgraph-local node ids (targets are 0 and 1, the
    :mod:`repro.graph.subgraph` convention). ``edge_attr`` and
    ``node_features`` are ``None`` when the source graph carries none.
    """

    index: int
    num_nodes: int
    num_edges: int
    edge_index: np.ndarray
    features: np.ndarray
    node_type: np.ndarray
    edge_type: np.ndarray
    edge_attr: Optional[np.ndarray]
    node_features: Optional[np.ndarray]


class StoreInfo(NamedTuple):
    """Occupancy and memory report of one :class:`SubgraphStore`."""

    entries: int  # links currently stored
    capacity: int  # total links the store indexes
    nodes: int  # node rows in use across all stored subgraphs
    edges: int  # edge columns in use
    nbytes: int  # bytes allocated across every backing buffer
    plans: int = 0  # batch-composition plan caches retained (LRU-bounded)
    plan_hits: int = 0  # plan-cache lookups answered (reset by clear())
    plan_misses: int = 0  # plan-cache lookups missed (reset by clear())
    generation: int = 0  # bumped by clear()/evict(); salts plan-cache keys
    lifetime_plan_hits: int = 0  # monotone across clear()/evict()
    lifetime_plan_misses: int = 0  # monotone across clear()/evict()


class SubgraphStore:
    """Append-only packed cache of per-link subgraphs.

    Parameters
    ----------
    capacity: number of links the store indexes (``task.num_links``).
    feature_dim: width of the SEAL node-attribute matrices.
    edge_attr_dim: width of stored edge attributes (0 = source graph has
        none; zero-fill happens at collate time, not here).
    node_feature_dim: width of explicit node features carried by the
        source graph (0 = none).
    float_dtype: dtype of the float-valued buffers (features, explicit
        node features, edge attributes). Defaults to the active compute
        dtype, so a float32 policy halves the store's float footprint —
        ``cache_info().nbytes`` reports the actual per-array sizes.
    """

    def __init__(
        self,
        capacity: int,
        feature_dim: int,
        *,
        edge_attr_dim: int = 0,
        node_feature_dim: int = 0,
        float_dtype=None,
    ):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if feature_dim <= 0:
            raise ValueError("feature_dim must be positive")
        self.capacity = int(capacity)
        self.feature_dim = int(feature_dim)
        self.edge_attr_dim = int(edge_attr_dim)
        self.node_feature_dim = int(node_feature_dim)
        self.float_dtype = np.dtype(
            resolve_dtype(float_dtype) if float_dtype is not None else get_compute_dtype()
        )
        # Batch-composition -> PlanCache memo. The store is append-only
        # (put() never mutates an existing entry), so a batch collated
        # from the same link indices is array-identical across epochs and
        # its segment plans can be reused verbatim. LRU-bounded so a
        # pathological sampler cannot hoard plans without bound.
        self._plan_cache: "OrderedDict[bytes, PlanCache]" = OrderedDict()
        self._plan_hits = 0
        self._plan_misses = 0
        # Lifetime counters survive clear()/evict() so downstream hit
        # rates derived from StoreInfo never go backwards; the
        # per-generation pair above describes the current graph only.
        self._lifetime_plan_hits = 0
        self._lifetime_plan_misses = 0
        # Generation stamp: bumped whenever stored content is dropped or
        # retired, so the same link indices can name different subgraphs
        # across generations. Collation salts plan-cache keys with it
        # (see plan_salt), which is how streaming snapshot versions
        # thread into the plan cache.
        self.generation = 0
        self._init_buffers()

    def _init_buffers(self) -> None:
        cap = self.capacity
        self.node_start = np.full(cap, -1, dtype=np.int64)
        self.node_count = np.zeros(cap, dtype=np.int64)
        self.edge_start = np.full(cap, -1, dtype=np.int64)
        self.edge_count = np.zeros(cap, dtype=np.int64)
        n0, e0 = 256, 512
        self.features = np.empty((n0, self.feature_dim), dtype=self.float_dtype)
        self.node_type = np.empty(n0, dtype=np.int64)
        self.node_features = (
            np.empty((n0, self.node_feature_dim), dtype=self.float_dtype)
            if self.node_feature_dim
            else None
        )
        self.edge_index = np.empty((2, e0), dtype=np.int64)
        self.edge_type = np.empty(e0, dtype=np.int64)
        self.edge_attr = (
            np.empty((e0, self.edge_attr_dim), dtype=self.float_dtype)
            if self.edge_attr_dim
            else None
        )
        self._node_tail = 0
        self._edge_tail = 0
        self._entries = 0

    # ------------------------------------------------------------------ #
    # batch plan cache
    # ------------------------------------------------------------------ #
    #: Max distinct batch compositions whose plans are retained.
    plan_cache_limit: int = 512

    def plan_lookup(self, key: bytes) -> Optional["PlanCache"]:
        """Plans previously stored for a batch composition key (LRU touch)."""
        plans = self._plan_cache.get(key)
        if plans is not None:
            self._plan_cache.move_to_end(key)
            self._plan_hits += 1
            self._lifetime_plan_hits += 1
        else:
            self._plan_misses += 1
            self._lifetime_plan_misses += 1
        return plans

    @property
    def plan_salt(self) -> bytes:
        """Generation prefix for plan-cache keys.

        Prepending this to the batch-composition bytes guarantees a plan
        cached before a clear()/evict() can never be confused with one
        for the same indices after the store's contents changed.
        """
        return self.generation.to_bytes(8, "little")

    def plan_store(self, key: bytes, plans: "PlanCache") -> None:
        """Retain ``plans`` for reuse by later batches with the same key."""
        self._plan_cache[key] = plans
        self._plan_cache.move_to_end(key)
        while len(self._plan_cache) > self.plan_cache_limit:
            self._plan_cache.popitem(last=False)

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._entries

    def __contains__(self, index: int) -> bool:
        return 0 <= index < self.capacity and self.node_start[index] >= 0

    def missing(self, indices: Sequence[int]) -> np.ndarray:
        """Subset of ``indices`` not yet stored (order preserved, deduped)."""
        indices = np.asarray(indices, dtype=np.int64)
        absent = indices[self.node_start[indices] < 0]
        _, first = np.unique(absent, return_index=True)
        return absent[np.sort(first)]

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    def _grow_nodes(self, extra: int) -> None:
        need = self._node_tail + extra
        cap = self.features.shape[0]
        if need <= cap:
            return
        new_cap = max(need, 2 * cap)
        self.features = np.resize(self.features, (new_cap, self.feature_dim))
        self.node_type = np.resize(self.node_type, new_cap)
        if self.node_features is not None:
            self.node_features = np.resize(self.node_features, (new_cap, self.node_feature_dim))

    def _grow_edges(self, extra: int) -> None:
        need = self._edge_tail + extra
        cap = self.edge_index.shape[1]
        if need <= cap:
            return
        new_cap = max(need, 2 * cap)
        ei = np.empty((2, new_cap), dtype=np.int64)
        ei[:, : self._edge_tail] = self.edge_index[:, : self._edge_tail]
        self.edge_index = ei
        self.edge_type = np.resize(self.edge_type, new_cap)
        if self.edge_attr is not None:
            self.edge_attr = np.resize(self.edge_attr, (new_cap, self.edge_attr_dim))

    def put(self, sample: PackedSubgraph) -> None:
        """Insert one link's packed subgraph (no-op if already present)."""
        i = sample.index
        if not 0 <= i < self.capacity:
            raise IndexError(f"link index {i} outside store capacity {self.capacity}")
        if i in self:
            return
        n, e = sample.num_nodes, sample.num_edges
        if sample.features.shape != (n, self.feature_dim):
            raise ValueError(
                f"feature matrix shape {sample.features.shape} != ({n}, {self.feature_dim})"
            )
        if self.edge_attr_dim and sample.edge_attr is None:
            raise ValueError("store expects edge attributes but sample has none")
        self._grow_nodes(n)
        self._grow_edges(e)
        ns, es = self._node_tail, self._edge_tail
        self.features[ns : ns + n] = sample.features
        self.node_type[ns : ns + n] = sample.node_type
        if self.node_features is not None:
            self.node_features[ns : ns + n] = sample.node_features
        self.edge_index[:, es : es + e] = sample.edge_index
        self.edge_type[es : es + e] = sample.edge_type
        if self.edge_attr is not None:
            self.edge_attr[es : es + e] = sample.edge_attr
        self.node_start[i] = ns
        self.node_count[i] = n
        self.edge_start[i] = es
        self.edge_count[i] = e
        self._node_tail += n
        self._edge_tail += e
        self._entries += 1

    def reserve(self, capacity: int) -> None:
        """Grow the link-index space to at least ``capacity`` entries.

        Stored subgraphs, their slices and the plan cache are untouched —
        only the offset tables are extended, so a long-lived store (the
        online scorer's, which meets new pairs for as long as the process
        serves) can admit them without re-extracting anything. Shrinking
        is not supported; a smaller ``capacity`` is a no-op.
        """
        if capacity <= self.capacity:
            return
        extra = int(capacity) - self.capacity
        self.node_start = np.concatenate(
            [self.node_start, np.full(extra, -1, dtype=np.int64)]
        )
        self.node_count = np.concatenate(
            [self.node_count, np.zeros(extra, dtype=np.int64)]
        )
        self.edge_start = np.concatenate(
            [self.edge_start, np.full(extra, -1, dtype=np.int64)]
        )
        self.edge_count = np.concatenate(
            [self.edge_count, np.zeros(extra, dtype=np.int64)]
        )
        self.capacity = int(capacity)

    def clear(self) -> None:
        """Drop every stored subgraph, the plan cache, and the counters.

        The plan LRU is keyed on batch *composition* (link indices), not
        on subgraph content — after a clear the same indices name
        different subgraphs, so a surviving plan would silently collate
        the new layout with the old plan's segment structure. The serve
        path relies on this: :meth:`LinkScorer.invalidate` clears the
        store when the graph changes, and stale plans must go with it.
        ``StoreInfo``'s per-generation plan hit/miss counters reset too,
        so post-clear hit rates describe the current graph only; the
        ``lifetime_plan_*`` counters keep counting across clears.
        """
        self._init_buffers()
        self._plan_cache.clear()
        self._plan_hits = 0
        self._plan_misses = 0
        self.generation += 1

    def evict(self, indices: Sequence[int]) -> int:
        """Retire individual links, keeping everything else resident.

        The named entries become absent (``missing()`` reports them,
        ``get()`` raises) while every other link keeps its packed slice.
        Packed node/edge rows of evicted entries are *not* reclaimed —
        the store is append-only and the space is recovered at the next
        :meth:`clear` — so eviction is O(len(indices)) and never moves
        surviving data. The generation stamp is bumped (invalidating
        salted plan keys that might include an evicted slot) and the plan
        LRU is dropped, mirroring :meth:`clear`'s staleness rule.

        Returns the number of entries actually evicted.
        """
        indices = np.asarray(indices, dtype=np.int64).ravel()
        if indices.size == 0:
            return 0
        if indices.size and (indices.min() < 0 or indices.max() >= self.capacity):
            raise IndexError("evict index outside store capacity")
        present = indices[self.node_start[indices] >= 0]
        evicted = int(np.unique(present).size)
        if evicted == 0:
            return 0
        self.node_start[present] = -1
        self.node_count[present] = 0
        self.edge_start[present] = -1
        self.edge_count[present] = 0
        self._entries -= evicted
        self._plan_cache.clear()
        self._plan_hits = 0
        self._plan_misses = 0
        self.generation += 1
        return evicted

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def get(self, index: int) -> PackedSubgraph:
        """O(1) packed view of link ``index`` (raises ``KeyError`` if absent)."""
        if index not in self:
            raise KeyError(f"link {index} not in store")
        ns, n = int(self.node_start[index]), int(self.node_count[index])
        es, e = int(self.edge_start[index]), int(self.edge_count[index])
        return PackedSubgraph(
            index=int(index),
            num_nodes=n,
            num_edges=e,
            edge_index=self.edge_index[:, es : es + e],
            features=self.features[ns : ns + n],
            node_type=self.node_type[ns : ns + n],
            edge_type=self.edge_type[es : es + e],
            edge_attr=None if self.edge_attr is None else self.edge_attr[es : es + e],
            node_features=(
                None if self.node_features is None else self.node_features[ns : ns + n]
            ),
        )

    def cache_info(self) -> StoreInfo:
        """Occupancy plus the bytes allocated across every backing buffer."""
        nbytes = (
            self.node_start.nbytes
            + self.node_count.nbytes
            + self.edge_start.nbytes
            + self.edge_count.nbytes
            + self.features.nbytes
            + self.node_type.nbytes
            + self.edge_index.nbytes
            + self.edge_type.nbytes
            + (0 if self.edge_attr is None else self.edge_attr.nbytes)
            + (0 if self.node_features is None else self.node_features.nbytes)
        )
        return StoreInfo(
            entries=self._entries,
            capacity=self.capacity,
            nodes=self._node_tail,
            edges=self._edge_tail,
            nbytes=int(nbytes),
            plans=len(self._plan_cache),
            plan_hits=self._plan_hits,
            plan_misses=self._plan_misses,
            generation=self.generation,
            lifetime_plan_hits=self._lifetime_plan_hits,
            lifetime_plan_misses=self._lifetime_plan_misses,
        )
