"""Ranking metrics: ROC curves, AUC, and average precision.

Implemented from first principles (no sklearn in the environment):

* AUC uses the Mann–Whitney U statistic — the probability that a random
  positive outranks a random negative — with the standard midrank tie
  correction. This equals the trapezoidal area under the ROC curve.
* The paper's multi-class protocol (§V-A): for AUC, "randomly choose one
  class as the positive class and treat the rest as negative";
  :func:`multiclass_auc` follows that one-vs-rest construction and also
  reports the macro average over all classes (a stabler summary, used for
  the figures).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.dtype import FLOAT64

from repro.utils.rng import RngLike, as_generator

__all__ = [
    "roc_curve",
    "roc_auc",
    "multiclass_auc",
    "average_precision_curve",
]


def _validate_binary(y_true: np.ndarray, scores: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=FLOAT64)
    if y_true.shape != scores.shape or y_true.ndim != 1:
        raise ValueError("y_true and scores must be equal-length 1-D arrays")
    uniq = np.unique(y_true)
    if not np.isin(uniq, [0, 1]).all():
        raise ValueError("y_true must be binary (0/1)")
    return y_true.astype(np.int64), scores


def roc_curve(y_true: np.ndarray, scores: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC points ``(fpr, tpr, thresholds)`` over descending thresholds."""
    y_true, scores = _validate_binary(y_true, scores)
    order = np.argsort(-scores, kind="stable")
    y_sorted = y_true[order]
    s_sorted = scores[order]
    # Collapse ties: take the last index of each distinct score.
    distinct = np.nonzero(np.diff(s_sorted))[0]
    idx = np.concatenate([distinct, [len(s_sorted) - 1]])
    tp = np.cumsum(y_sorted)[idx].astype(FLOAT64)
    fp = (idx + 1) - tp
    p = max(float(y_true.sum()), 1.0)
    n = max(float(len(y_true) - y_true.sum()), 1.0)
    tpr = np.concatenate([[0.0], tp / p])
    fpr = np.concatenate([[0.0], fp / n])
    thresholds = np.concatenate([[np.inf], s_sorted[idx]])
    return fpr, tpr, thresholds


def roc_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic (tie-corrected).

    Returns 0.5 when one class is absent (the random-guess convention —
    keeps small evaluation slices well-defined).
    """
    y_true, scores = _validate_binary(y_true, scores)
    n_pos = int(y_true.sum())
    n_neg = len(y_true) - n_pos
    if n_pos == 0 or n_neg == 0:
        return 0.5
    # Midranks handle ties exactly.
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(len(scores), dtype=FLOAT64)
    sorted_scores = scores[order]
    i = 0
    base = np.arange(1, len(scores) + 1, dtype=FLOAT64)
    # Assign midranks to tied runs.
    boundaries = np.nonzero(np.diff(sorted_scores))[0] + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(scores)]])
    for s, e in zip(starts, ends):
        ranks[order[s:e]] = 0.5 * (base[s] + base[e - 1])
    rank_sum = ranks[y_true == 1].sum()
    u = rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def multiclass_auc(
    y_true: np.ndarray,
    probs: np.ndarray,
    *,
    positive_class: Optional[int] = None,
    rng: RngLike = None,
) -> float:
    """One-vs-rest AUC for multi-class link classification.

    Parameters
    ----------
    y_true: ``(B,)`` integer labels.
    probs: ``(B, C)`` class scores (probabilities or logits — AUC is
        invariant to monotone transforms per class).
    positive_class:
        When given, compute AUC for that class vs the rest (the paper's
        "randomly choose one class" protocol picks it at random — pass
        ``rng`` instead to do the same). When omitted and no ``rng`` is
        given, the macro average over all classes present is returned.
    rng: picks the positive class at random (paper protocol).
    """
    y_true = np.asarray(y_true)
    probs = np.asarray(probs, dtype=FLOAT64)
    if probs.ndim != 2 or probs.shape[0] != y_true.shape[0]:
        raise ValueError("probs must be (B, C) matching y_true")
    present = np.unique(y_true)
    if positive_class is None and rng is not None:
        positive_class = int(as_generator(rng).choice(present))
    if positive_class is not None:
        return roc_auc((y_true == positive_class).astype(int), probs[:, positive_class])
    aucs = [
        roc_auc((y_true == c).astype(int), probs[:, c])
        for c in present
        if 0 < (y_true == c).sum() < len(y_true)
    ]
    return float(np.mean(aucs)) if aucs else 0.5


def average_precision_curve(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the precision-recall curve (step-wise AP).

    ``AP = Σ (R_i − R_{i−1}) · P_i`` over descending score thresholds.
    Provided for completeness alongside the paper's class-precision AP
    (see :func:`repro.metrics.classification.average_precision`).
    """
    y_true, scores = _validate_binary(y_true, scores)
    n_pos = int(y_true.sum())
    if n_pos == 0:
        return 0.0
    order = np.argsort(-scores, kind="stable")
    y_sorted = y_true[order]
    tp = np.cumsum(y_sorted)
    precision = tp / np.arange(1, len(y_sorted) + 1)
    recall = tp / n_pos
    prev_recall = np.concatenate([[0.0], recall[:-1]])
    return float(((recall - prev_recall) * precision).sum())
