"""Probability-calibration metrics: Brier score and expected calibration error.

Classification AUC/AP say nothing about whether predicted probabilities
are *honest*; a drug–disease "indication" probability feeding downstream
decisions should be calibrated. Extension metrics for the evaluator.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.dtype import FLOAT64

__all__ = ["brier_score", "expected_calibration_error", "reliability_bins"]


def _validate(y_true: np.ndarray, probs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    probs = np.asarray(probs, dtype=FLOAT64)
    if probs.ndim != 2 or y_true.shape != (probs.shape[0],):
        raise ValueError("probs must be (B, C) matching y_true")
    if y_true.size and (y_true.min() < 0 or y_true.max() >= probs.shape[1]):
        raise ValueError("labels out of range")
    return y_true.astype(np.int64), probs


def brier_score(y_true: np.ndarray, probs: np.ndarray) -> float:
    """Multi-class Brier score: mean squared error against the one-hot truth.

    0 is perfect; 2 is the worst possible; a uniform C-class predictor
    scores ``(C-1)/C``.
    """
    y_true, probs = _validate(y_true, probs)
    if len(y_true) == 0:
        return 0.0
    onehot = np.zeros_like(probs)
    onehot[np.arange(len(y_true)), y_true] = 1.0
    return float(((probs - onehot) ** 2).sum(axis=1).mean())


def reliability_bins(
    y_true: np.ndarray,
    probs: np.ndarray,
    n_bins: int = 10,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Confidence-binned accuracy: ``(bin_confidence, bin_accuracy, bin_count)``.

    Bins the argmax-confidence of each prediction into ``n_bins`` equal
    intervals of (0, 1]; empty bins report NaN confidence/accuracy and
    count 0.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    y_true, probs = _validate(y_true, probs)
    conf = probs.max(axis=1)
    pred = probs.argmax(axis=1)
    correct = (pred == y_true).astype(FLOAT64)
    # Bin by confidence; right-closed bins so conf=1.0 falls in the last.
    idx = np.minimum((conf * n_bins).astype(int), n_bins - 1)
    counts = np.bincount(idx, minlength=n_bins).astype(FLOAT64)
    conf_sum = np.bincount(idx, weights=conf, minlength=n_bins)
    acc_sum = np.bincount(idx, weights=correct, minlength=n_bins)
    with np.errstate(invalid="ignore", divide="ignore"):
        mean_conf = np.where(counts > 0, conf_sum / counts, np.nan)
        mean_acc = np.where(counts > 0, acc_sum / counts, np.nan)
    return mean_conf, mean_acc, counts


def expected_calibration_error(
    y_true: np.ndarray,
    probs: np.ndarray,
    n_bins: int = 10,
) -> float:
    """ECE: count-weighted mean |confidence − accuracy| over bins."""
    mean_conf, mean_acc, counts = reliability_bins(y_true, probs, n_bins)
    total = counts.sum()
    if total == 0:
        return 0.0
    gaps = np.abs(mean_conf - mean_acc)
    return float(np.nansum(gaps * counts) / total)
