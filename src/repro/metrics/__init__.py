"""Evaluation metrics: AUC/ROC (ranking) and precision-style (thresholded)."""

from repro.metrics.classification import (
    accuracy,
    average_precision,
    classification_report,
    confusion_matrix,
    f1_per_class,
    precision_per_class,
    recall_per_class,
)
from repro.metrics.calibration import (
    brier_score,
    expected_calibration_error,
    reliability_bins,
)
from repro.metrics.kg_ranking import (
    hits_at_k,
    mean_reciprocal_rank,
    ranking_report,
    true_class_ranks,
)
from repro.metrics.ranking import (
    average_precision_curve,
    multiclass_auc,
    roc_auc,
    roc_curve,
)

__all__ = [
    "roc_curve",
    "roc_auc",
    "multiclass_auc",
    "average_precision_curve",
    "accuracy",
    "confusion_matrix",
    "precision_per_class",
    "recall_per_class",
    "average_precision",
    "f1_per_class",
    "classification_report",
    "true_class_ranks",
    "mean_reciprocal_rank",
    "hits_at_k",
    "ranking_report",
    "brier_score",
    "expected_calibration_error",
    "reliability_bins",
]
