"""Knowledge-graph ranking metrics: MRR and Hits@k.

OGB-style link tasks (the real OGBL-BioKG) report mean reciprocal rank
and Hits@k over candidate rankings. For the classification framing used
here, the "candidates" are the classes: the rank of the true class in
the predicted probability ordering. Provided as extension metrics for
the BioKG-like evaluation.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.nn.dtype import FLOAT64

__all__ = ["true_class_ranks", "mean_reciprocal_rank", "hits_at_k", "ranking_report"]


def true_class_ranks(y_true: np.ndarray, probs: np.ndarray) -> np.ndarray:
    """1-indexed rank of the true class within each row's score ordering.

    Ties are resolved *pessimistically* (the true class ranks below every
    strictly-greater score and below equal scores of lower class index —
    we use the standard "average of optimistic and pessimistic" midrank
    convention to keep the metric tie-stable).
    """
    y_true = np.asarray(y_true)
    probs = np.asarray(probs, dtype=FLOAT64)
    if probs.ndim != 2 or y_true.shape != (probs.shape[0],):
        raise ValueError("probs must be (B, C) matching y_true")
    true_scores = probs[np.arange(len(y_true)), y_true]
    greater = (probs > true_scores[:, None]).sum(axis=1)
    equal = (probs == true_scores[:, None]).sum(axis=1)  # includes itself
    # Midrank: 1 + #greater + (#equal - 1)/2.
    return 1.0 + greater + (equal - 1) / 2.0


def mean_reciprocal_rank(y_true: np.ndarray, probs: np.ndarray) -> float:
    """Mean of 1/rank of the true class (1.0 = always ranked first)."""
    ranks = true_class_ranks(y_true, probs)
    return float((1.0 / ranks).mean()) if len(ranks) else 0.0


def hits_at_k(y_true: np.ndarray, probs: np.ndarray, k: int) -> float:
    """Fraction of rows whose true class ranks within the top ``k``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    ranks = true_class_ranks(y_true, probs)
    return float((ranks <= k).mean()) if len(ranks) else 0.0


def ranking_report(
    y_true: np.ndarray, probs: np.ndarray, ks: Sequence[int] = (1, 3, 5)
) -> Dict[str, float]:
    """MRR plus Hits@k for each requested ``k``."""
    out = {"mrr": mean_reciprocal_rank(y_true, probs)}
    for k in ks:
        out[f"hits@{k}"] = hits_at_k(y_true, probs, k)
    return out
