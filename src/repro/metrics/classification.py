"""Thresholded classification metrics: accuracy, precision/recall, AP.

The paper's **AP** metric (§V-A) is the *mean of per-class precisions*
under one-vs-rest: each class in turn is treated as positive and its
precision ``TP/(TP+FP)`` computed from the argmax predictions; AP is the
unweighted mean over classes. :func:`average_precision` implements exactly
that definition (it is not the PR-curve AP — that lives in
:mod:`repro.metrics.ranking`).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.dtype import FLOAT64

__all__ = [
    "accuracy",
    "confusion_matrix",
    "precision_per_class",
    "recall_per_class",
    "average_precision",
    "f1_per_class",
    "classification_report",
]


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError("y_true and y_pred must be equal-length 1-D arrays")
    return y_true.astype(np.int64), y_pred.astype(np.int64)


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact matches."""
    y_true, y_pred = _validate(y_true, y_pred)
    if len(y_true) == 0:
        return 0.0
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, num_classes: Optional[int] = None) -> np.ndarray:
    """Counts matrix ``M[t, p]`` = examples of true class t predicted p."""
    y_true, y_pred = _validate(y_true, y_pred)
    if num_classes is None:
        num_classes = int(max(y_true.max(initial=-1), y_pred.max(initial=-1))) + 1
    m = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(m, (y_true, y_pred), 1)
    return m


def precision_per_class(y_true: np.ndarray, y_pred: np.ndarray, num_classes: Optional[int] = None) -> np.ndarray:
    """``TP/(TP+FP)`` per class; classes never predicted get 0."""
    m = confusion_matrix(y_true, y_pred, num_classes)
    predicted = m.sum(axis=0).astype(FLOAT64)
    tp = np.diag(m).astype(FLOAT64)
    return np.divide(tp, predicted, out=np.zeros_like(tp), where=predicted > 0)


def recall_per_class(y_true: np.ndarray, y_pred: np.ndarray, num_classes: Optional[int] = None) -> np.ndarray:
    """``TP/(TP+FN)`` per class; absent classes get 0."""
    m = confusion_matrix(y_true, y_pred, num_classes)
    actual = m.sum(axis=1).astype(FLOAT64)
    tp = np.diag(m).astype(FLOAT64)
    return np.divide(tp, actual, out=np.zeros_like(tp), where=actual > 0)


def average_precision(y_true: np.ndarray, y_pred: np.ndarray, num_classes: Optional[int] = None) -> float:
    """The paper's AP: mean one-vs-rest precision over classes *present*.

    Classes that appear in neither ``y_true`` nor ``y_pred`` are excluded
    from the mean (they carry no information about the classifier).
    """
    y_true, y_pred = _validate(y_true, y_pred)
    m = confusion_matrix(y_true, y_pred, num_classes)
    involved = (m.sum(axis=0) + m.sum(axis=1)) > 0
    if not involved.any():
        return 0.0
    prec = precision_per_class(y_true, y_pred, m.shape[0])
    return float(prec[involved].mean())


def f1_per_class(y_true: np.ndarray, y_pred: np.ndarray, num_classes: Optional[int] = None) -> np.ndarray:
    """Harmonic mean of per-class precision and recall (0 when both 0)."""
    p = precision_per_class(y_true, y_pred, num_classes)
    r = recall_per_class(y_true, y_pred, num_classes)
    denom = p + r
    return np.divide(2 * p * r, denom, out=np.zeros_like(p), where=denom > 0)


def classification_report(y_true: np.ndarray, y_pred: np.ndarray, num_classes: Optional[int] = None) -> Dict[str, object]:
    """Bundle of the scalar metrics plus per-class arrays."""
    return {
        "accuracy": accuracy(y_true, y_pred),
        "average_precision": average_precision(y_true, y_pred, num_classes),
        "precision": precision_per_class(y_true, y_pred, num_classes),
        "recall": recall_per_class(y_true, y_pred, num_classes),
        "f1": f1_per_class(y_true, y_pred, num_classes),
        "confusion": confusion_matrix(y_true, y_pred, num_classes),
    }
