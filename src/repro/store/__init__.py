"""repro.store — zero-copy storage: mmap graph arrays + shm batch rings.

The storage layer under the data pipeline:

* :class:`GraphStorage` — the frozen array set behind every
  :class:`~repro.graph.Graph`; lives in memory or as read-only numpy
  memmaps on disk (``save``/``open``), shared across worker processes
  without pickling the graph payload.
* :class:`SampleRing` — a slotted ``multiprocessing.shared_memory``
  ring the parallel :class:`~repro.data.DataLoader` uses to move packed
  subgraph batches from workers to the parent without serialization.
* :class:`ParameterBuffer` — the fixed-layout shared-memory
  weights/gradients exchange the data-parallel trainer
  (:mod:`repro.distributed`) reduces through, with a strict-rank-order
  sum that keeps K-process training bit-identical to one process.
* :func:`save_task` / :func:`load_task` — persist a whole
  :class:`~repro.seal.LinkTask` (graph + pairs + labels + recipe) as a
  directory workloads can be re-run against (``profile --graph-dir``).
"""

from repro.store.graph_storage import STORAGE_VERSION, GraphStorage
from repro.store.parambuf import CMD_ABORT, CMD_RUN, CMD_STOP, ParameterBuffer
from repro.store.ring import SampleRing
from repro.store.task_io import TASK_FILE, has_task, load_task, save_task

__all__ = [
    "STORAGE_VERSION",
    "GraphStorage",
    "ParameterBuffer",
    "CMD_RUN",
    "CMD_STOP",
    "CMD_ABORT",
    "SampleRing",
    "TASK_FILE",
    "has_task",
    "load_task",
    "save_task",
]
