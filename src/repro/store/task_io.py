"""Persist a whole :class:`~repro.seal.LinkTask` next to its saved graph.

:func:`save_task` writes the task's graph through
:meth:`GraphStorage.save` and everything else (pairs, labels, class
names, extraction settings, the feature recipe) as one atomic
``task.npz`` via the same meta-npz idiom checkpoints and model bundles
use. :func:`load_task` rebuilds the task with the graph mmap-opened, so
``python -m repro profile --graph-dir DIR`` (and any other caller) can
run a large workload against on-disk arrays instead of regenerating —
and re-pickling — synthetics every run.

All ``repro`` imports are deferred inside the functions: this module is
re-exported from :mod:`repro.store`, which :mod:`repro.graph.structure`
must be importable *before* (the storage layer sits below the graph).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["TASK_FILE", "has_task", "load_task", "save_task"]

#: Filename of the task manifest inside a saved task directory.
TASK_FILE = "task.npz"

_TASK_VERSION = 1


def has_task(directory) -> bool:
    """Whether ``directory`` holds a complete saved task (graph + manifest)."""
    directory = Path(directory)
    return (directory / TASK_FILE).exists() and (directory / "meta.json").exists()


def save_task(directory, task) -> Path:
    """Write ``task`` (graph arrays + task manifest) under ``directory``."""
    from repro.seal.checkpoint import write_meta_npz

    directory = Path(directory)
    task.graph.save(directory)
    arrays = {
        "pairs": np.asarray(task.pairs, dtype=np.int64),
        "labels": np.asarray(task.labels, dtype=np.int64),
    }
    fc = task.feature_config
    if fc.embeddings is not None:
        arrays["feature:embeddings"] = np.asarray(fc.embeddings)
    meta = {
        "kind": "link-task",
        "version": _TASK_VERSION,
        "name": task.name,
        "num_classes": int(task.num_classes),
        "class_names": list(task.class_names),
        "subgraph_mode": task.subgraph_mode,
        "num_hops": int(task.num_hops),
        "max_subgraph_nodes": (
            None if task.max_subgraph_nodes is None else int(task.max_subgraph_nodes)
        ),
        "edge_attr_dim": int(task.edge_attr_dim),
        "feature_config": {
            "num_node_types": fc.num_node_types,
            "use_drnl": fc.use_drnl,
            "max_drnl_label": fc.max_drnl_label,
            "explicit_dim": fc.explicit_dim,
        },
    }
    write_meta_npz(directory / TASK_FILE, arrays, meta)
    return directory


def load_task(directory, *, mmap: bool = True):
    """Rebuild the :class:`~repro.seal.LinkTask` saved under ``directory``.

    The graph comes back through :meth:`Graph.open` — mmap-backed by
    default, so the task is ready for zero-copy worker payloads.
    """
    from repro.graph.structure import Graph
    from repro.seal.checkpoint import read_meta_npz
    from repro.seal.dataset import LinkTask
    from repro.seal.features import FeatureConfig

    directory = Path(directory)
    arrays, meta = read_meta_npz(directory / TASK_FILE)
    if meta.get("kind") != "link-task":
        raise ValueError(f"{directory / TASK_FILE} is not a saved link task")
    if meta.get("version") != _TASK_VERSION:
        raise ValueError(
            f"saved task version {meta.get('version')} unsupported "
            f"(this build reads version {_TASK_VERSION})"
        )
    fc_meta = meta["feature_config"]
    feature_config = FeatureConfig(
        num_node_types=int(fc_meta["num_node_types"]),
        use_drnl=bool(fc_meta["use_drnl"]),
        max_drnl_label=int(fc_meta["max_drnl_label"]),
        explicit_dim=int(fc_meta["explicit_dim"]),
        embeddings=arrays.get("feature:embeddings"),
    )
    return LinkTask(
        graph=Graph.open(directory, mmap=mmap),
        pairs=arrays["pairs"],
        labels=arrays["labels"],
        num_classes=int(meta["num_classes"]),
        feature_config=feature_config,
        class_names=list(meta["class_names"]),
        name=meta["name"],
        subgraph_mode=meta["subgraph_mode"],
        num_hops=int(meta["num_hops"]),
        max_subgraph_nodes=(
            None
            if meta["max_subgraph_nodes"] is None
            else int(meta["max_subgraph_nodes"])
        ),
        edge_attr_dim=int(meta["edge_attr_dim"]),
    )
