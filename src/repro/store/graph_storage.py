"""Array-backed frozen graph storage, in memory or as on-disk memmaps.

:class:`GraphStorage` owns every array of one
:class:`~repro.graph.structure.Graph` — the ``(2, E)`` edge list, the
node/edge type and attribute matrices, and the lazily built CSR view
(``indptr``, ``indices``, ``edge_ids``). The arrays can live in two
places:

* **in memory** — the default, exactly what ``Graph`` held before this
  layer existed;
* **on disk** — :meth:`GraphStorage.save` writes each array as its own
  ``.npy`` file plus a ``meta.json`` manifest, and
  :meth:`GraphStorage.open` maps them back with
  ``np.load(..., mmap_mode="r")``. Mapped pages are shared read-only
  across every process that opens the directory, so worker pools touch
  the same physical memory instead of each holding a pickled copy.

Bit-identity contract: :meth:`save` precomputes the CSR with the exact
construction :meth:`csr` uses (stable argsort of the source row), so an
opened storage answers every adjacency query with the same bytes the
in-memory graph would. Mmap-opened arrays are read-only (writes raise),
which is also what makes the cross-process sharing safe.

Pickling an mmap-backed storage serializes only the directory path —
the receiving process re-opens the maps — so sending a graph to a
worker costs a few hundred bytes regardless of graph size.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro import obs

__all__ = ["STORAGE_VERSION", "GraphStorage"]

#: On-disk format version; bumped on any layout change.
STORAGE_VERSION = 1

_META_FILE = "meta.json"
_CSR_ARRAYS = ("csr_indptr", "csr_indices", "csr_edge_ids")


def _open_mmap(path: str) -> "GraphStorage":
    """Module-level unpickle hook (see :meth:`GraphStorage.__reduce_ex__`)."""
    return GraphStorage.open(path, mmap=True)


def _write_npy(directory: Path, name: str, arr: np.ndarray) -> None:
    """Atomically write ``arr`` as ``<name>.npy`` (tmp sibling + rename)."""
    tmp = directory / f".{name}.npy.tmp"
    try:
        with open(tmp, "wb") as fh:
            np.save(fh, np.ascontiguousarray(arr))
        os.replace(tmp, directory / f"{name}.npy")
    finally:
        if tmp.exists():
            tmp.unlink()


class GraphStorage:
    """The frozen array set backing one graph.

    Construction performs no validation — :class:`~repro.graph.structure.Graph`
    validates shapes before building a storage, and :meth:`open` trusts
    the manifest it wrote. ``node_features`` / ``edge_attr`` are ``None``
    when the graph carries none.
    """

    def __init__(
        self,
        num_nodes: int,
        edge_index: np.ndarray,
        *,
        node_type: np.ndarray,
        edge_type: np.ndarray,
        node_features: Optional[np.ndarray] = None,
        edge_attr: Optional[np.ndarray] = None,
        csr: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
        path: Optional[Path] = None,
        mmap: bool = False,
    ):
        self.num_nodes = int(num_nodes)
        self.edge_index = edge_index
        self.node_type = node_type
        self.edge_type = edge_type
        self.node_features = node_features
        self.edge_attr = edge_attr
        self._csr = csr
        self.path: Optional[Path] = None if path is None else Path(path)
        self.mmap = bool(mmap)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        return int(self.edge_index.shape[1])

    def csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Out-neighbor CSR view ``(indptr, indices, edge_ids)``.

        Built once and cached. A saved storage ships the CSR as part of
        the directory (computed by this very code path at save time), so
        opened graphs never pay the O(E log E) sort — and stay
        bit-identical to the in-memory construction.
        """
        if self._csr is None:
            src, dst = self.edge_index
            order = np.argsort(src, kind="stable")
            sorted_src = src[order]
            indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
            np.add.at(indptr, sorted_src + 1, 1)
            np.cumsum(indptr, out=indptr)
            self._csr = (indptr, dst[order], order)
        return self._csr

    def nbytes(self) -> int:
        """Bytes across every held array (CSR included once built)."""
        total = self.edge_index.nbytes + self.node_type.nbytes + self.edge_type.nbytes
        if self.node_features is not None:
            total += self.node_features.nbytes
        if self.edge_attr is not None:
            total += self.edge_attr.nbytes
        if self._csr is not None:
            total += sum(a.nbytes for a in self._csr)
        return int(total)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, directory) -> Path:
        """Write every array (CSR included) under ``directory``.

        One ``.npy`` per array — the layout ``np.load(mmap_mode="r")``
        can map directly (``.npz`` members cannot be mapped). Arrays are
        written atomically and ``meta.json`` last, so a directory with a
        manifest is always complete. Returns the directory and records
        it as :attr:`path`, which marks this storage as path-backed for
        zero-copy worker payloads.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        indptr, indices, edge_ids = self.csr()
        arrays = {
            "edge_index": self.edge_index,
            "node_type": self.node_type,
            "edge_type": self.edge_type,
            "csr_indptr": indptr,
            "csr_indices": indices,
            "csr_edge_ids": edge_ids,
        }
        if self.node_features is not None:
            arrays["node_features"] = self.node_features
        if self.edge_attr is not None:
            arrays["edge_attr"] = self.edge_attr
        for name, arr in arrays.items():
            _write_npy(directory, name, arr)
        meta = {
            "format": "repro-graph-storage",
            "version": STORAGE_VERSION,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "has_node_features": self.node_features is not None,
            "has_edge_attr": self.edge_attr is not None,
        }
        tmp = directory / f".{_META_FILE}.tmp"
        tmp.write_text(json.dumps(meta, indent=2) + "\n", encoding="utf-8")
        os.replace(tmp, directory / _META_FILE)
        self.path = directory
        obs.count("store.graph.saves")
        return directory

    @classmethod
    def open(cls, directory, *, mmap: bool = True) -> "GraphStorage":
        """Open a directory written by :meth:`save`.

        With ``mmap=True`` (the default) every array — CSR included — is
        a read-only memmap: nothing is copied into RAM until touched,
        and pages are shared between processes mapping the same files.
        With ``mmap=False`` the arrays are fully loaded (the baseline
        the ``mmap_open`` microbenchmark compares against).
        """
        directory = Path(directory)
        meta_path = directory / _META_FILE
        if not meta_path.exists():
            raise FileNotFoundError(f"{directory} is not a graph-storage directory")
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        if meta.get("format") != "repro-graph-storage":
            raise ValueError(f"{directory} manifest has unknown format")
        if meta.get("version") != STORAGE_VERSION:
            raise ValueError(
                f"graph storage version {meta.get('version')} unsupported "
                f"(this build reads version {STORAGE_VERSION})"
            )
        mode = "r" if mmap else None

        def load(name: str) -> np.ndarray:
            return np.load(directory / f"{name}.npy", mmap_mode=mode)

        storage = cls(
            meta["num_nodes"],
            load("edge_index"),
            node_type=load("node_type"),
            edge_type=load("edge_type"),
            node_features=load("node_features") if meta["has_node_features"] else None,
            edge_attr=load("edge_attr") if meta["has_edge_attr"] else None,
            csr=tuple(load(name) for name in _CSR_ARRAYS),
            path=directory,
            mmap=mmap,
        )
        obs.count("store.mmap.opens" if mmap else "store.full.opens")
        return storage

    def __reduce_ex__(self, protocol):
        # An mmap-backed storage pickles as its path: workers re-open the
        # maps instead of receiving (and duplicating) the array payload.
        if self.mmap and self.path is not None:
            return (_open_mmap, (str(self.path),))
        return super().__reduce_ex__(protocol)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        backing = f"mmap:{self.path}" if self.mmap else "memory"
        return (
            f"GraphStorage(num_nodes={self.num_nodes}, "
            f"num_edges={self.num_edges}, backing={backing})"
        )
