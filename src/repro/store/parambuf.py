"""Shared-memory parameter/gradient buffer for data-parallel training.

One float64 region shared by the trainer parent and its K shard
workers, laid out as::

    [ params (P) | grad slab 0 (P) | ... | grad slab K-1 (P)
      | scalars (K rows of [loss, count]) | control (2) ]

where ``P`` is the total parameter count of a fixed *spec* — an ordered
``(name, shape)`` list taken from ``model.named_parameters()``. The
parent publishes weights into the params section after each optimizer
step; worker ``rank`` writes its scaled shard loss and flattened
gradients into slab ``rank``; :meth:`ParameterBuffer.reduce_grads` sums
the slabs **in strict ascending rank order** (an explicit sequential
loop, never a pairwise tree), which is what makes K-process training
bit-identical to the in-process reference reduction.

:meth:`ParameterBuffer.local` builds the same layout over a plain
ndarray with no shared memory behind it — the in-process trainer mode
runs the identical put/reduce code path, so the two modes cannot
drift apart.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ParameterBuffer", "CMD_RUN", "CMD_STOP", "CMD_ABORT"]

# Control words (stored as float64; exact for small ints).
CMD_RUN = 0
CMD_STOP = 1
CMD_ABORT = 2

_CTRL_DOUBLES = 2  # [command, reserved]
_SCALAR_COLS = 2  # [loss, count]

Spec = List[Tuple[str, Tuple[int, ...]]]


def _normalize_spec(spec: Sequence[Tuple[str, Sequence[int]]]) -> Spec:
    out: Spec = []
    seen = set()
    for name, shape in spec:
        name = str(name)
        if name in seen:
            raise ValueError(f"duplicate parameter name {name!r}")
        seen.add(name)
        out.append((name, tuple(int(d) for d in shape)))
    if not out:
        raise ValueError("parameter spec is empty")
    return out


def _spec_sizes(spec: Spec) -> List[int]:
    return [int(np.prod(shape, dtype=np.int64)) if shape else 1 for _, shape in spec]


class ParameterBuffer:
    """Fixed-layout parameter + per-rank gradient exchange buffer."""

    def __init__(
        self,
        buf: np.ndarray,
        spec: Sequence[Tuple[str, Sequence[int]]],
        num_slabs: int,
        *,
        shm: Optional[shared_memory.SharedMemory] = None,
        owner: bool = False,
    ):
        self.spec = _normalize_spec(spec)
        self.num_slabs = int(num_slabs)
        if self.num_slabs < 1:
            raise ValueError("num_slabs must be >= 1")
        self._sizes = _spec_sizes(self.spec)
        self._offsets = np.concatenate([[0], np.cumsum(self._sizes)])[:-1]
        self.num_params = int(sum(self._sizes))
        expected = self.required_doubles(self.spec, self.num_slabs)
        if buf.size != expected:
            raise ValueError(
                f"buffer holds {buf.size} doubles, layout needs {expected}"
            )
        p, k = self.num_params, self.num_slabs
        self._params = buf[:p]
        self._grads = buf[p : p + k * p].reshape(k, p)
        scal = buf[p + k * p : p + k * p + k * _SCALAR_COLS]
        self._scalars = scal.reshape(k, _SCALAR_COLS)
        self._ctrl = buf[p + k * p + k * _SCALAR_COLS :]
        self._shm = shm
        self._owner = owner

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def required_doubles(spec: Sequence[Tuple[str, Sequence[int]]], num_slabs: int) -> int:
        sizes = _spec_sizes(_normalize_spec(spec))
        p = int(sum(sizes))
        return p * (int(num_slabs) + 1) + int(num_slabs) * _SCALAR_COLS + _CTRL_DOUBLES

    @classmethod
    def create(
        cls, spec: Sequence[Tuple[str, Sequence[int]]], num_slabs: int
    ) -> "ParameterBuffer":
        """Allocate a zeroed shared-memory buffer (parent side)."""
        doubles = cls.required_doubles(spec, num_slabs)
        shm = shared_memory.SharedMemory(create=True, size=doubles * 8)
        buf = np.ndarray(doubles, dtype=np.float64, buffer=shm.buf)
        buf[:] = 0.0
        return cls(buf, spec, num_slabs, shm=shm, owner=True)

    @classmethod
    def attach(cls, meta: Tuple[str, Spec, int]) -> "ParameterBuffer":
        """Map an existing buffer from its :attr:`meta` (worker side)."""
        name, spec, num_slabs = meta
        doubles = cls.required_doubles(spec, num_slabs)
        shm = shared_memory.SharedMemory(name=name)
        buf = np.ndarray(doubles, dtype=np.float64, buffer=shm.buf)
        return cls(buf, spec, num_slabs, shm=shm, owner=False)

    @classmethod
    def local(
        cls, spec: Sequence[Tuple[str, Sequence[int]]], num_slabs: int
    ) -> "ParameterBuffer":
        """Same layout over a plain ndarray (in-process reference mode)."""
        doubles = cls.required_doubles(spec, num_slabs)
        return cls(np.zeros(doubles, dtype=np.float64), spec, num_slabs)

    @property
    def meta(self) -> Tuple[str, Spec, int]:
        """Everything a worker needs to :meth:`attach` (pickles tiny)."""
        if self._shm is None:
            raise ValueError("local buffers cannot be attached across processes")
        return (self._shm.name, self.spec, self.num_slabs)

    # ------------------------------------------------------------------ #
    # parameters
    # ------------------------------------------------------------------ #
    def put_params(self, named: Dict[str, np.ndarray]) -> None:
        """Publish a full set of parameter arrays (spec order)."""
        for (name, shape), size, off in zip(self.spec, self._sizes, self._offsets):
            arr = np.asarray(named[name], dtype=np.float64)
            if arr.shape != shape:
                raise ValueError(
                    f"parameter {name!r} has shape {arr.shape}, spec says {shape}"
                )
            self._params[off : off + size] = arr.reshape(-1)

    def get_params(self) -> Dict[str, np.ndarray]:
        """Copy the published parameters out as name→array."""
        out: Dict[str, np.ndarray] = {}
        for (name, shape), size, off in zip(self.spec, self._sizes, self._offsets):
            out[name] = self._params[off : off + size].reshape(shape).copy()
        return out

    # ------------------------------------------------------------------ #
    # gradients + per-rank scalars
    # ------------------------------------------------------------------ #
    def put_grads(
        self,
        rank: int,
        grads: Optional[Dict[str, Optional[np.ndarray]]],
        loss: float,
        count: int,
    ) -> None:
        """Write rank's gradient slab and (scaled loss, link count).

        ``grads=None`` — an empty shard batch or a non-finite shard loss
        — zeroes the whole slab, so the ordered reduction still adds the
        slab (adding zeros keeps the float op sequence identical between
        in-process and multi-process runs).
        """
        slab = self._grads[rank]
        if grads is None:
            slab[:] = 0.0
        else:
            for (name, shape), size, off in zip(self.spec, self._sizes, self._offsets):
                g = grads.get(name)
                if g is None:
                    slab[off : off + size] = 0.0
                else:
                    slab[off : off + size] = np.asarray(
                        g, dtype=np.float64
                    ).reshape(-1)
        self._scalars[rank, 0] = float(loss)
        self._scalars[rank, 1] = float(count)

    def reduce_grads(self) -> Dict[str, np.ndarray]:
        """Sum all slabs in ascending rank order; split per parameter.

        The accumulation is an explicit sequential loop — slab 0 plus
        slab 1 plus slab 2 … — never a pairwise/tree sum, so the result
        is a deterministic function of the slab contents alone.
        """
        acc = self._grads[0].copy()
        for rank in range(1, self.num_slabs):
            acc += self._grads[rank]
        out: Dict[str, np.ndarray] = {}
        for (name, shape), size, off in zip(self.spec, self._sizes, self._offsets):
            out[name] = acc[off : off + size].reshape(shape)
        return out

    def reduce_loss(self) -> float:
        """Ordered sum of the per-rank scaled losses."""
        total = 0.0
        for rank in range(self.num_slabs):
            total += float(self._scalars[rank, 0])
        return total

    def counts(self) -> np.ndarray:
        """Per-rank link counts from the last step (copy)."""
        return self._scalars[:, 1].astype(np.int64)

    # ------------------------------------------------------------------ #
    # control word
    # ------------------------------------------------------------------ #
    def set_command(self, command: int) -> None:
        self._ctrl[0] = float(command)

    def get_command(self) -> int:
        return int(self._ctrl[0])

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop array views and release the mapping (owner also unlinks)."""
        self._params = self._grads = self._scalars = self._ctrl = None
        if self._shm is not None:
            shm, self._shm = self._shm, None
            shm.close()
            if self._owner:
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass

    def __enter__(self) -> "ParameterBuffer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
