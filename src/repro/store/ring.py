"""Shared-memory ring buffer for worker→parent packed-batch transport.

The parallel :class:`~repro.data.DataLoader` used to receive every
extracted chunk as a pickled list of
:class:`~repro.data.store.PackedSubgraph` objects — serialized in the
worker, shipped through the pool's result pipe, deserialized in the
parent. :class:`SampleRing` replaces that copy chain with one shared
``multiprocessing.shared_memory`` segment divided into fixed-size slots:

1. The parent *acquires* a free slot and names it in the dispatch.
2. The worker packs the chunk's samples columnarly into the slot —
   the same node-axis/edge-axis layout ``SubgraphStore`` uses — and
   returns only a tiny ``("shm", slot, header)`` descriptor.
3. The parent rebuilds ``PackedSubgraph`` *views* into the slot (no
   copy), adopts them into the store, then *releases* the slot.

Slot ownership needs no locks: a slot moves parent→worker inside the
dispatch message and worker→parent inside the result message, and the
pool's pipes provide the happens-before edge for the shared bytes.

A chunk that does not fit its slot falls back to the pickle path
(``("pkl", samples)``) — correctness never depends on slot capacity.
The views returned by :meth:`read` alias the slot and are only valid
until it is released; callers must copy (``SubgraphStore.put`` does)
before releasing.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.nn.dtype import FLOAT32, FLOAT64

__all__ = ["SampleRing"]

_I64 = np.dtype(np.int64)
_FLOAT_BY_ITEMSIZE = {4: np.dtype(FLOAT32), 8: np.dtype(FLOAT64)}

#: header = (num_samples, total_nodes, total_edges,
#:           feature_dim, node_feature_dim, edge_attr_dim, float_itemsize)
#:
#: ``float_itemsize`` (4 or 8) is the byte width of the float-valued
#: blocks, so a float32 store ships half the bytes per batch. Legacy
#: 6-tuple headers (implicitly float64) are still accepted on read.
Header = Tuple[int, int, int, int, int, int, int]


def _normalize_header(header) -> Header:
    """Fill in the float itemsize for pre-dtype 6-tuple headers."""
    if len(header) == 6:
        return (*header, 8)
    return tuple(header)


class SampleRing:
    """Fixed-capacity slotted shared-memory transport.

    Create one per loader in the parent (:meth:`create`), attach by name
    in each worker (:meth:`attach`). The parent side alone tracks the
    free-slot list; workers only ever touch the slot they were handed.
    """

    def __init__(self, shm, slots: int, slot_bytes: int, *, owner: bool):
        self._shm = shm
        self.slots = int(slots)
        self.slot_bytes = int(slot_bytes)
        self._owner = bool(owner)
        self._free: Optional[List[int]] = list(range(slots)) if owner else None

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def meta(self) -> Tuple[str, int, int]:
        """``(name, slots, slot_bytes)`` — everything a worker needs to attach."""
        return (self.name, self.slots, self.slot_bytes)

    @classmethod
    def create(cls, slots: int, slot_bytes: int) -> "SampleRing":
        """Allocate the segment (parent side; owns the lifetime)."""
        if slots < 1 or slot_bytes < 64:
            raise ValueError("need slots >= 1 and slot_bytes >= 64")
        shm = shared_memory.SharedMemory(create=True, size=slots * slot_bytes)
        return cls(shm, slots, slot_bytes, owner=True)

    @classmethod
    def attach(cls, name: str, slots: int, slot_bytes: int) -> "SampleRing":
        """Map an existing segment (worker side).

        Pool workers share the parent's resource-tracker process, whose
        name cache is a set — the attach-time re-registration (always
        performed before Python 3.13) is therefore a no-op, and the
        parent's ``unlink`` deregisters cleanly. No tracker workaround
        is needed for same-process-tree attachment.
        """
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, slots, slot_bytes, owner=False)

    def close(self) -> None:
        """Unmap; the owner also unlinks the segment (idempotent)."""
        if self._shm is None:
            return
        try:
            self._shm.close()
        except Exception:  # pragma: no cover - platform dependent
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except Exception:  # pragma: no cover - already gone
                pass
        self._shm = None

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # slot bookkeeping (parent side)
    # ------------------------------------------------------------------ #
    def acquire(self) -> int:
        """Claim a free slot; ``-1`` when exhausted (worker then pickles)."""
        if not self._free:
            obs.count("store.ring.exhausted")
            return -1
        slot = self._free.pop()
        obs.observe("store.ring.occupancy", 1.0 - len(self._free) / self.slots)
        return slot

    def release(self, slot: int) -> None:
        """Return a slot to the free list (after its views were copied)."""
        self._free.append(slot)

    # ------------------------------------------------------------------ #
    # columnar slot layout
    # ------------------------------------------------------------------ #
    @staticmethod
    def required_bytes(header: Header) -> int:
        """Bytes a batch with this header occupies in a slot."""
        s, tn, te, f, nf, ea, isz = _normalize_header(header)
        int_cells = 3 * s + tn + 3 * te
        float_cells = tn * f + tn * nf + te * ea
        return 8 * int_cells + isz * float_cells

    def _views(self, slot: int, header: Header) -> Dict[str, np.ndarray]:
        """Typed array views over one slot, in the fixed block order.

        Used identically by the writing worker and the reading parent,
        so the layout cannot skew between the two sides. The 8-byte int
        blocks come first, then the float blocks at the header's
        itemsize; offsets stay aligned by construction.
        """
        s, tn, te, f, nf, ea, isz = _normalize_header(header)
        fdt = _FLOAT_BY_ITEMSIZE[isz]
        buf = self._shm.buf
        off = slot * self.slot_bytes

        def take(count: int, dtype, shape) -> np.ndarray:
            nonlocal off
            arr = np.frombuffer(buf, dtype=dtype, count=count, offset=off)
            off += count * dtype.itemsize
            return arr.reshape(shape)

        return {
            "indices": take(s, _I64, (s,)),
            "node_counts": take(s, _I64, (s,)),
            "edge_counts": take(s, _I64, (s,)),
            "node_type": take(tn, _I64, (tn,)),
            "edge_index": take(2 * te, _I64, (2, te)),
            "edge_type": take(te, _I64, (te,)),
            "features": take(tn * f, fdt, (tn, f)),
            "node_features": take(tn * nf, fdt, (tn, nf)),
            "edge_attr": take(te * ea, fdt, (te, ea)),
        }

    def write(self, slot: int, samples) -> Optional[Header]:
        """Pack ``samples`` into ``slot`` (worker side).

        Returns the header the parent needs to read the slot back, or
        ``None`` when the batch does not fit — the caller then falls
        back to returning the samples by value.
        """
        s = len(samples)
        tn = sum(smp.num_nodes for smp in samples)
        te = sum(smp.num_edges for smp in samples)
        first = samples[0]
        f = int(first.features.shape[1])
        nf = 0 if first.node_features is None else int(first.node_features.shape[1])
        ea = 0 if first.edge_attr is None else int(first.edge_attr.shape[1])
        # Ship floats at the samples' own width; non-float features (never
        # produced by the extractors) would fall back to 8-byte blocks.
        isz = first.features.dtype.itemsize if first.features.dtype.kind == "f" else 8
        header: Header = (s, tn, te, f, nf, ea, isz)
        if self.required_bytes(header) > self.slot_bytes:
            return None
        views = self._views(slot, header)
        no = eo = 0
        for j, smp in enumerate(samples):
            n, e = smp.num_nodes, smp.num_edges
            views["indices"][j] = smp.index
            views["node_counts"][j] = n
            views["edge_counts"][j] = e
            views["node_type"][no : no + n] = smp.node_type
            views["edge_index"][:, eo : eo + e] = smp.edge_index
            views["edge_type"][eo : eo + e] = smp.edge_type
            views["features"][no : no + n] = smp.features
            if nf:
                views["node_features"][no : no + n] = smp.node_features
            if ea:
                views["edge_attr"][eo : eo + e] = smp.edge_attr
            no += n
            eo += e
        return header

    def read(self, slot: int, header: Header):
        """Rebuild the packed samples as zero-copy views (parent side).

        The returned ``PackedSubgraph`` arrays alias the slot; copy them
        (``SubgraphStore.put`` does) before :meth:`release`-ing it.
        """
        from repro.data.store import PackedSubgraph

        s, _, _, _, nf, ea, _ = _normalize_header(header)
        views = self._views(slot, header)
        samples = []
        no = eo = 0
        for j in range(s):
            n = int(views["node_counts"][j])
            e = int(views["edge_counts"][j])
            samples.append(
                PackedSubgraph(
                    index=int(views["indices"][j]),
                    num_nodes=n,
                    num_edges=e,
                    edge_index=views["edge_index"][:, eo : eo + e],
                    features=views["features"][no : no + n],
                    node_type=views["node_type"][no : no + n],
                    edge_type=views["edge_type"][eo : eo + e],
                    edge_attr=views["edge_attr"][eo : eo + e] if ea else None,
                    node_features=views["node_features"][no : no + n] if nf else None,
                )
            )
            no += n
            eo += e
        return samples
