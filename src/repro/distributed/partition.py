"""Graph partitioning for data-parallel training.

Splits a :class:`~repro.graph.Graph` (plus the link set of a
:class:`~repro.seal.LinkTask`) into ``K`` shards. Each shard owns a
deterministic subset of the *links* (ownership follows the source
endpoint's node owner) and materializes a shard-local graph over its
**halo**: every node within ``task.num_hops`` hops of any owned link
endpoint. Because SEAL's enclosing-subgraph extraction never looks past
``num_hops``, extracting an owned link against the shard-local graph is
bit-identical to extracting it against the full graph — the property
the data-parallel trainer's bit-identity guarantee rests on (see
``tests/distributed/test_partition.py``).

Two owner assignments are provided:

``hash``
    A stateless multiplicative hash of the node id. Deterministic across
    processes and platforms (pure uint64 arithmetic), O(N), and needs no
    graph structure — the choice for huge graphs.
``greedy``
    Sequential greedy edge-cut in descending-degree order: each node
    joins the shard holding most of its already-placed neighbors,
    subject to a capacity cap. Slower (Python loop over nodes) but cuts
    far fewer edges on clustered graphs, shrinking halos.

Shards persist through the existing :class:`repro.store.GraphStorage`
mmap format (:meth:`GraphPartition.save` / :meth:`GraphPartition.open`),
so worker processes open their shard zero-copy and pickling a shard
graph ships only its path.
"""

from __future__ import annotations

import dataclasses
import json
import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.nn.dtype import FLOAT64

import repro.obs as obs
from repro.graph.structure import Graph
from repro.graph.traversal import k_hop_union
from repro.seal.dataset import LinkTask

__all__ = [
    "PARTITION_FORMAT",
    "Shard",
    "GraphPartition",
    "hash_node_owners",
    "greedy_node_owners",
    "partition_graph",
    "shard_task",
]

logger = logging.getLogger(__name__)

PARTITION_FORMAT = 1
_PARTITION_FILE = "partition.json"
_ASSIGNMENT_FILE = "assignment.npz"
_MEMBERS_FILE = "members.npz"

# splitmix64-style multiplicative constants — fixed forever so hash
# partitions are reproducible across sessions and machines.
_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)
_HASH_SEED_MULT = np.uint64(0xBF58476D1CE4E5B9)


def hash_node_owners(num_nodes: int, num_shards: int, *, seed: int = 0) -> np.ndarray:
    """Stateless node→shard assignment via a splitmix64-style mix.

    Pure uint64 arithmetic (wrapping is well-defined), so every process
    computes the same owners without communication.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    ids = np.arange(num_nodes, dtype=np.uint64)
    with np.errstate(over="ignore"):
        mixed = ids * _HASH_MULT + np.uint64(seed & 0xFFFFFFFFFFFFFFFF) * _HASH_SEED_MULT
        mixed ^= mixed >> np.uint64(31)
        mixed *= _HASH_MULT
        mixed ^= mixed >> np.uint64(29)
    return (mixed % np.uint64(num_shards)).astype(np.int64)


def greedy_node_owners(
    graph: Graph,
    num_shards: int,
    *,
    seed: int = 0,
    imbalance: float = 1.1,
) -> np.ndarray:
    """Greedy edge-cut assignment: nodes placed in descending-degree order.

    Each node goes to the shard already holding the most of its
    neighbors (LDG-style streaming placement), capped at
    ``ceil(N / K * imbalance)`` nodes per shard; ties break toward the
    least-loaded shard, then the lowest shard index. Deterministic: the
    visit order is a stable degree sort and ``seed`` only reorders
    equal-degree nodes via the hash mix, keeping placement reproducible.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if imbalance < 1.0:
        raise ValueError("imbalance must be >= 1.0")
    n = graph.num_nodes
    owner = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return owner
    capacity = int(np.ceil(n / num_shards * imbalance))
    # Stable descending-degree order; the seed-keyed hash breaks degree
    # ties deterministically without favoring low node ids.
    degree = graph.degree()
    tie = hash_node_owners(n, max(n, 1), seed=seed)
    order = np.lexsort((tie, -degree))
    indptr, indices, _ = graph.csr()
    loads = np.zeros(num_shards, dtype=np.int64)
    for v in order:
        nbrs = indices[indptr[v] : indptr[v + 1]]
        placed = owner[nbrs]
        placed = placed[placed >= 0]
        gain = np.bincount(placed, minlength=num_shards).astype(FLOAT64)
        gain[loads >= capacity] = -np.inf
        # Prefer neighbor affinity, then light load, then low index.
        best = np.lexsort((np.arange(num_shards), loads, -gain))[0]
        owner[v] = best
        loads[best] += 1
    return owner


@dataclass
class Shard:
    """One shard of a partitioned task.

    ``graph`` is the halo-induced shard-local graph; ``node_map[i]`` is
    the global id of shard node ``i`` (sorted ascending, so global→local
    relabeling is monotone — the property that keeps shard-local
    extraction bit-identical to full-graph extraction); ``owned_links``
    are the *global* link indices this shard trains on.
    """

    index: int
    graph: Graph
    node_map: np.ndarray
    owned_links: np.ndarray

    @property
    def num_halo_nodes(self) -> int:
        return int(self.node_map.shape[0])


@dataclass
class GraphPartition:
    """A K-way partition of a link task's graph and link set."""

    shards: List[Shard]
    node_owner: np.ndarray
    link_owner: np.ndarray
    method: str
    num_hops: int
    seed: int
    cut_edges: int = 0
    path: Optional[Path] = field(default=None, compare=False)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_links(self) -> int:
        return int(self.link_owner.shape[0])

    def stats(self) -> dict:
        """Partition quality: cut edges, halo sizes, replication factor."""
        num_nodes = int(self.node_owner.shape[0])
        halo_sizes = [s.num_halo_nodes for s in self.shards]
        owned_nodes = np.bincount(self.node_owner, minlength=self.num_shards)
        owned_links = [int(s.owned_links.shape[0]) for s in self.shards]
        total_halo = int(sum(halo_sizes))
        return {
            "num_shards": self.num_shards,
            "method": self.method,
            "num_hops": self.num_hops,
            "seed": self.seed,
            "num_nodes": num_nodes,
            "num_links": self.num_links,
            "cut_edges": int(self.cut_edges),
            "owned_nodes": [int(c) for c in owned_nodes],
            "owned_links": owned_links,
            "halo_nodes": halo_sizes,
            "replication_factor": (total_halo / num_nodes) if num_nodes else 0.0,
        }

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, directory) -> Path:
        """Persist the partition under ``directory``.

        Layout: ``assignment.npz`` (owner vectors), one
        ``shard_NNN/`` per shard — the shard graph in
        :class:`~repro.store.GraphStorage` mmap format plus a
        ``members.npz`` with ``node_map``/``owned_links`` — and
        ``partition.json`` written *last* as the completeness marker
        (mirroring ``GraphStorage.save``'s meta-last protocol).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        np.savez(
            directory / _ASSIGNMENT_FILE,
            node_owner=self.node_owner,
            link_owner=self.link_owner,
        )
        for shard in self.shards:
            sub = directory / f"shard_{shard.index:03d}"
            shard.graph.save(sub)
            np.savez(
                sub / _MEMBERS_FILE,
                node_map=shard.node_map,
                owned_links=shard.owned_links,
            )
        meta = {
            "format": "repro-partition",
            "version": PARTITION_FORMAT,
            "num_shards": self.num_shards,
            "method": self.method,
            "num_hops": self.num_hops,
            "seed": self.seed,
            "stats": self.stats(),
        }
        (directory / _PARTITION_FILE).write_text(json.dumps(meta, indent=2))
        self.path = directory
        return directory

    @classmethod
    def open(cls, directory, *, mmap: bool = True) -> "GraphPartition":
        """Reopen a saved partition; shard graphs memory-map zero-copy."""
        directory = Path(directory)
        meta_path = directory / _PARTITION_FILE
        if not meta_path.exists():
            raise FileNotFoundError(
                f"no partition at {directory} (missing {_PARTITION_FILE})"
            )
        meta = json.loads(meta_path.read_text())
        if meta.get("format") != "repro-partition":
            raise ValueError(f"{meta_path} is not a repro partition manifest")
        if meta.get("version") != PARTITION_FORMAT:
            raise ValueError(
                f"unsupported partition version {meta.get('version')!r}"
            )
        with np.load(directory / _ASSIGNMENT_FILE) as npz:
            node_owner = npz["node_owner"].copy()
            link_owner = npz["link_owner"].copy()
        shards = []
        for index in range(int(meta["num_shards"])):
            sub = directory / f"shard_{index:03d}"
            graph = Graph.open(sub, mmap=mmap)
            with np.load(sub / _MEMBERS_FILE) as npz:
                node_map = npz["node_map"].copy()
                owned_links = npz["owned_links"].copy()
            shards.append(
                Shard(
                    index=index,
                    graph=graph,
                    node_map=node_map,
                    owned_links=owned_links,
                )
            )
        return cls(
            shards=shards,
            node_owner=node_owner,
            link_owner=link_owner,
            method=str(meta["method"]),
            num_hops=int(meta["num_hops"]),
            seed=int(meta["seed"]),
            cut_edges=int(meta.get("stats", {}).get("cut_edges", 0)),
            path=directory,
        )


def partition_graph(
    task: LinkTask,
    num_shards: int,
    *,
    method: str = "hash",
    seed: int = 0,
    imbalance: float = 1.1,
) -> GraphPartition:
    """Partition ``task``'s graph and links into ``num_shards`` shards.

    Link ownership follows the owner of the link's source endpoint, so
    the shard→link assignment is a pure function of ``(method, seed)``
    and the graph — every process derives the same split. Each shard's
    halo covers ``task.num_hops`` hops around all owned-link endpoints
    (positive and negative pairs alike), which is exactly the
    neighborhood SEAL extraction can reach.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    graph = task.graph
    if method == "hash":
        node_owner = hash_node_owners(graph.num_nodes, num_shards, seed=seed)
    elif method == "greedy":
        node_owner = greedy_node_owners(
            graph, num_shards, seed=seed, imbalance=imbalance
        )
    else:
        raise ValueError(f"unknown partition method {method!r} (hash|greedy)")
    link_owner = node_owner[task.pairs[:, 0]]
    src, dst = graph.edge_index
    cut_edges = int(np.count_nonzero(node_owner[src] != node_owner[dst]))

    shards: List[Shard] = []
    for index in range(num_shards):
        owned_links = np.flatnonzero(link_owner == index)
        endpoints = task.pairs[owned_links].reshape(-1)
        halo = k_hop_union(graph, endpoints, task.num_hops)
        shard_graph, node_map = graph.induced_subgraph(halo)
        shards.append(
            Shard(
                index=index,
                graph=shard_graph,
                node_map=node_map,
                owned_links=owned_links,
            )
        )
    part = GraphPartition(
        shards=shards,
        node_owner=node_owner,
        link_owner=link_owner,
        method=method,
        num_hops=task.num_hops,
        seed=seed,
        cut_edges=cut_edges,
    )
    if obs.enabled():
        obs.count("distributed.partition.cut_edges", cut_edges)
        obs.count(
            "distributed.partition.halo_nodes",
            int(sum(s.num_halo_nodes for s in shards)),
        )
        obs.count("distributed.partition.owned_links", part.num_links)
        obs.gauge(
            "distributed.partition.replication_factor",
            part.stats()["replication_factor"],
        )
    logger.info(
        "partitioned %d nodes / %d links into %d shards (%s): "
        "cut=%d replication=%.2f",
        graph.num_nodes,
        part.num_links,
        num_shards,
        method,
        cut_edges,
        part.stats()["replication_factor"],
    )
    return part


def shard_task(task: LinkTask, shard: Shard) -> LinkTask:
    """The shard-local view of ``task`` for one shard.

    Keeps *global* link indexing: the returned task has the same number
    of links as the full task, with owned rows' endpoints remapped to
    shard-local node ids and every non-owned row set to ``(-1, -1)``
    (inert — extraction on one fails loudly, and the trainer never asks
    for them). Global indexing means the shard dataset's extraction
    streams (keyed ``(task.name, link index)``), labels, and store slots
    all line up with the full-graph dataset — the bit-identity
    invariant.
    """
    graph = task.graph
    lookup = np.full(graph.num_nodes, -1, dtype=np.int64)
    lookup[shard.node_map] = np.arange(shard.node_map.shape[0], dtype=np.int64)
    pairs = np.full_like(task.pairs, -1)
    owned = shard.owned_links
    pairs[owned] = lookup[task.pairs[owned]]
    if (pairs[owned] < 0).any():
        raise AssertionError("owned link endpoint missing from shard halo")
    config = task.feature_config
    if config.embeddings is not None:
        config = dataclasses.replace(
            config, embeddings=config.embeddings[shard.node_map]
        )
    return LinkTask(
        graph=shard.graph,
        pairs=pairs,
        labels=task.labels,
        num_classes=task.num_classes,
        feature_config=config,
        class_names=task.class_names,
        name=task.name,
        subgraph_mode=task.subgraph_mode,
        num_hops=task.num_hops,
        max_subgraph_nodes=task.max_subgraph_nodes,
        edge_attr_dim=task.edge_attr_dim,
    )
