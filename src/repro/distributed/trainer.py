"""Data-parallel SEAL training over a sharded graph.

:func:`train_data_parallel` runs the same optimization as
:func:`repro.seal.train` with the per-step gradient work split across
``K`` shards of a :class:`~repro.distributed.GraphPartition`. Each
global mini-batch (drawn from the *same* shuffle stream the
single-process trainer uses) is grouped by link owner; every shard
computes the gradient of its group's loss scaled by ``n_shard /
n_batch`` — so the ordered sum of shard losses *is* the batch's mean
cross-entropy and the ordered sum of shard gradient slabs *is* the
batch gradient — and one parent applies guard, clip and Adam exactly as
the single-process loop would.

Bit-identity contract
---------------------
* ``num_shards=1, processes=0`` reproduces :func:`repro.seal.train`
  bit-for-bit (the ×1.0 loss scale is IEEE-exact).
* ``processes=K`` (one OS process per shard, gradients exchanged
  through a :class:`~repro.store.ParameterBuffer` with a barrier per
  step) is bit-identical to ``processes=0`` with the same partition:
  both modes run the same per-shard forward/backward on the same
  shard-local graphs and the same strict-rank-order reduction.
* Any ``K`` is bit-identical to any other ``K`` *up to the grouping*:
  the per-step float sequence is partition-defined, so K=2 and K=4 of
  the same partition seed agree with each other through the K=1
  reference only when their reductions commute exactly — which the
  tests pin down per K against the in-process reference.
* Resume goes through the existing :mod:`repro.seal.checkpoint`
  bundles: the parent owns model, optimizer and every RNG stream, so a
  mid-run bundle restores into either mode bit-identically.

Workers consume shard-local links through the existing
``SEALDataset``/``build_packed_samples`` store path against their
shard's mmap graph (opened zero-copy; daemonic workers cannot nest a
``DataLoader`` pool, so extraction inside a worker is serial — the
parallelism is across shards).
"""

from __future__ import annotations

import multiprocessing as mp
import tempfile
import time
from dataclasses import dataclass
from threading import BrokenBarrierError
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.data.loader import usable_cores
from repro.nn.losses import cross_entropy
from repro.nn.module import Module
from repro.nn.optim import Adam, clip_grad_norm
from repro.obs.callbacks import TrainingLogger
from repro.seal.checkpoint import (
    Checkpoint,
    CheckpointConfig,
    checkpoint_path,
    prune_checkpoints,
    save_checkpoint,
)
from repro.seal.dataset import SEALDataset
from repro.seal.evaluator import EvalResult, evaluate
from repro.seal.results import TrainResult
from repro.nn.dtype import FLOAT64, cast_module, compute_dtype, resolve_dtype, set_compute_dtype
from repro.seal.trainer import (
    NonFiniteLossError,
    TrainConfig,
    _resolve_callbacks,
    _resume_from_checkpoint,
    _snapshot,
    _training_generators,
    _update_phase_seconds,
)
from repro.store.parambuf import CMD_ABORT, CMD_RUN, CMD_STOP, ParameterBuffer
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, derive, generator_state, restore_generator_state
from repro.utils.timing import Stopwatch

from repro.distributed.partition import GraphPartition, partition_graph, shard_task

__all__ = ["DistributedConfig", "train_data_parallel"]

logger = get_logger("distributed.trainer")


@dataclass
class DistributedConfig(TrainConfig):
    """Hyperparameters of a data-parallel run (extends TrainConfig).

    ``processes=0`` runs every shard sequentially in the calling process
    — the reference mode used for bit-identity testing and single-core
    hosts; ``processes=num_shards`` spawns one worker process per shard.
    """

    num_shards: int = 2
    processes: int = 0  # 0 = in-process reference; otherwise must equal num_shards
    partition_method: str = "hash"
    #: seconds any step/epoch barrier may wait before the run is
    #: declared wedged (the distributed analogue of the loader's
    #: hung-worker timeout from the fault-tolerance PR)
    barrier_timeout: float = 300.0


def _named_arrays(model: Module) -> Dict[str, np.ndarray]:
    return {name: p.data for name, p in model.named_parameters()}


def _load_params(named, values: Dict[str, np.ndarray]) -> None:
    for name, p in named:
        p.data[...] = values[name]


def _shard_step_grads(model: Module, dataset: SEALDataset, mine: np.ndarray, n_global: int):
    """One shard's contribution to one global step.

    Returns ``(grads, loss, count)`` for :meth:`ParameterBuffer.put_grads`:
    the gradients of ``mean_CE(shard group) * (len(group) / n_global)``.
    Empty groups contribute ``(None, 0.0, 0)`` — a zero slab — and a
    non-finite shard loss ships ``None`` grads so the poison reaches the
    parent only through the loss total the guard inspects.
    """
    if mine.size == 0:
        return None, 0.0, 0
    from repro.data.loader import collate_from_store

    dataset.ensure_many(mine)
    batch = collate_from_store(
        dataset.store, mine, edge_attr_dim=dataset.task.edge_attr_dim
    )
    labels = dataset.task.labels[mine]
    for _, p in model.named_parameters():
        p.grad = None
    with obs.trace("forward"):
        logits = model(batch)
        loss = cross_entropy(logits, labels) * (float(mine.size) / float(n_global))
    loss_val = float(loss.data)
    grads = None
    if np.isfinite(loss_val):
        with obs.trace("backward"):
            loss.backward()
        grads = {name: p.grad for name, p in model.named_parameters()}
    return grads, loss_val, int(mine.size)


def _worker_main(
    rank: int,
    model: Module,
    task,
    owned_links: np.ndarray,
    train_indices: np.ndarray,
    config: DistributedConfig,
    start_epoch: int,
    shuffle_state: dict,
    buffer_meta,
    barrier,
    report_queue,
    dataset_rng: RngLike,
) -> None:
    """Shard worker: replicate the global batch schedule, push gradients.

    Owns a model replica and the shard-local dataset; replays the same
    shuffle stream as the parent (restored from ``shuffle_state``), so
    each global batch is reconstructed locally and filtered to owned
    links without any index traffic. Per step: write grads →
    barrier A → barrier B → read command + fresh params.
    """
    buffer = ParameterBuffer.attach(buffer_meta)
    # The dtype policy is thread-local state and does not survive the
    # spawn — re-activate it so the replica's tape matches the parent's.
    # The shared ParameterBuffer itself stays float64 regardless.
    set_compute_dtype(resolve_dtype(config.compute_dtype))
    grad_seconds = 0.0
    barrier_seconds = 0.0
    links = 0
    steps = 0
    try:
        gen = np.random.default_rng(0)
        restore_generator_state(gen, shuffle_state)
        dataset = SEALDataset(task, rng=dataset_rng)
        owned_mask = np.zeros(task.num_links, dtype=bool)
        owned_mask[owned_links] = True
        model.train()
        named = list(model.named_parameters())
        _load_params(named, buffer.get_params())
        batch_size = config.batch_size
        stop = False
        for _epoch in range(start_epoch, config.epochs):
            perm = gen.permutation(train_indices)
            for start in range(0, len(perm), batch_size):
                gbatch = perm[start : start + batch_size]
                mine = gbatch[owned_mask[gbatch]]
                t0 = time.perf_counter()
                grads, loss, count = _shard_step_grads(
                    model, dataset, mine, len(gbatch)
                )
                grad_seconds += time.perf_counter() - t0
                buffer.put_grads(rank, grads, loss, count)
                links += int(mine.size)
                steps += 1
                t0 = time.perf_counter()
                barrier.wait(config.barrier_timeout)  # A: grads ready
                barrier.wait(config.barrier_timeout)  # B: params ready
                barrier_seconds += time.perf_counter() - t0
                if buffer.get_command() == CMD_ABORT:
                    stop = True
                    break
                _load_params(named, buffer.get_params())
            if stop:
                break
            barrier.wait(config.barrier_timeout)  # E: epoch verdict
            if buffer.get_command() == CMD_STOP:
                break
        report_queue.put(
            {
                "rank": rank,
                "steps": steps,
                "links": links,
                "grad_seconds": grad_seconds,
                "barrier_seconds": barrier_seconds,
            }
        )
    except BrokenBarrierError:
        # Parent aborted (its exception propagates there) — exit quietly.
        pass
    except BaseException as exc:  # pragma: no cover - exercised via fault tests
        try:
            report_queue.put({"rank": rank, "error": f"{type(exc).__name__}: {exc}"})
        except Exception:
            pass
        try:
            barrier.abort()
        except Exception:
            pass
    finally:
        buffer.close()


def _check_model_supported(model: Module, config: DistributedConfig) -> None:
    """Reject stochastic-forward models that cannot stay bit-identical.

    An active dropout layer draws from a per-module stream; K replicas
    would each consume their own copy of that stream, diverging from
    the sequential reference. (``num_shards=1, processes=0`` is the
    single-stream case and stays allowed.)
    """
    if config.num_shards == 1 and config.processes == 0:
        return
    for i, mod in enumerate(model.modules()):
        rng = getattr(mod, "_rng", None)
        if isinstance(rng, np.random.Generator) and float(getattr(mod, "p", 0.0)) > 0.0:
            raise ValueError(
                "data-parallel training does not support modules with an "
                f"active stochastic forward (module {i}: "
                f"{type(mod).__name__} with p={mod.p}); set dropout to 0"
            )


def train_data_parallel(
    model: Module,
    dataset: SEALDataset,
    train_indices: Sequence[int],
    config: DistributedConfig,
    *,
    partition: Optional[GraphPartition] = None,
    eval_indices: Optional[Sequence[int]] = None,
    rng: RngLike = 0,
    callbacks: Optional[Iterable[TrainingLogger]] = None,
    verbose: Union[bool, None] = None,
    checkpoint: Optional[CheckpointConfig] = None,
) -> TrainResult:
    """Train ``model`` data-parallel over ``config.num_shards`` shards.

    Mirrors :func:`repro.seal.train`'s semantics (guards, callbacks,
    eval cadence, early stopping, checkpointing) with the gradient work
    sharded. See the module docstring for the bit-identity contract.

    ``config.compute_dtype`` behaves as in :func:`repro.seal.train`:
    replicas run their tapes under the policy (workers re-activate it
    after the spawn), while gradient reduction through the shared
    :class:`~repro.store.parambuf.ParameterBuffer` stays float64, so the
    summed-slab float sequence — and therefore shard determinism — is
    unchanged by the policy.

    Parameters beyond :func:`repro.seal.train`'s:

    partition: a prebuilt :class:`GraphPartition` of ``dataset.task``;
        built on the fly (``config.partition_method``) when omitted. In
        multi-process mode an unsaved partition is persisted to a
        temporary directory first so workers open their shard graphs
        zero-copy.
    """
    policy = resolve_dtype(config.compute_dtype)
    if policy != FLOAT64:
        cast_module(model, policy)
    with compute_dtype(policy):
        return _train_data_parallel_impl(
            model,
            dataset,
            train_indices,
            config,
            partition=partition,
            eval_indices=eval_indices,
            rng=rng,
            callbacks=callbacks,
            verbose=verbose,
            checkpoint=checkpoint,
        )


def _train_data_parallel_impl(
    model: Module,
    dataset: SEALDataset,
    train_indices: Sequence[int],
    config: DistributedConfig,
    *,
    partition: Optional[GraphPartition],
    eval_indices: Optional[Sequence[int]],
    rng: RngLike,
    callbacks: Optional[Iterable[TrainingLogger]],
    verbose: Union[bool, None],
    checkpoint: Optional[CheckpointConfig],
) -> TrainResult:
    """Data-parallel loop body; runs under the already-active policy."""
    if config.epochs <= 0:
        raise ValueError("epochs must be positive")
    if config.max_nonfinite_steps < 1:
        raise ValueError("max_nonfinite_steps must be >= 1")
    if config.num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if config.processes not in (0, config.num_shards):
        raise ValueError(
            f"processes must be 0 (in-process) or num_shards="
            f"{config.num_shards}, got {config.processes}"
        )
    if config.class_weights is not None:
        raise ValueError(
            "class_weights are not supported in data-parallel training: "
            "weighted cross-entropy normalizes by the batch's weight sum, "
            "which does not decompose exactly across shard groups"
        )
    if config.restore_best and eval_indices is None:
        raise ValueError("restore_best requires eval_indices")
    if config.patience is not None and eval_indices is None:
        raise ValueError("patience (early stopping) requires eval_indices")
    if config.patience is not None and config.patience < 1:
        raise ValueError("patience must be >= 1")
    train_indices = np.asarray(train_indices, dtype=np.int64)
    if train_indices.size == 0:
        raise ValueError(
            "train_indices is empty — an epoch over zero batches would "
            "silently record a 0.0 loss"
        )
    _check_model_supported(model, config)

    task = dataset.task
    if partition is None:
        part_seed = int(derive(rng, "partition").integers(0, 2**31 - 1))
        partition = partition_graph(
            task,
            config.num_shards,
            method=config.partition_method,
            seed=part_seed,
        )
    if partition.num_shards != config.num_shards:
        raise ValueError(
            f"partition has {partition.num_shards} shards, "
            f"config.num_shards={config.num_shards}"
        )
    if partition.num_links != task.num_links:
        raise ValueError(
            f"partition covers {partition.num_links} links, "
            f"task has {task.num_links}"
        )

    use_mp = config.processes > 0
    if use_mp and usable_cores() < 2:
        logger.warning(
            "processes=%d requested on a host with %d usable core(s); "
            "workers will timeshare one core",
            config.processes, usable_cores(),
        )

    optimizer = Adam(
        model.named_parameters(), lr=config.lr, weight_decay=config.weight_decay
    )
    cbs = _resolve_callbacks(callbacks, verbose, None)
    shuffle_rng = derive(rng, "shuffle")
    gens = _training_generators(model, None, shuffle_rng)
    result = TrainResult()
    watch = Stopwatch()
    best_state = None
    start_epoch = 0
    last_written = 0
    snapshot: Optional[Checkpoint] = None

    ck = _resume_from_checkpoint(checkpoint, model, optimizer, gens, config.epochs)
    if ck is not None:
        ck_shards = ck.train_config.get("num_shards")
        if ck_shards is not None and int(ck_shards) != config.num_shards:
            logger.warning(
                "resuming a %s-shard checkpoint with num_shards=%d — losses "
                "remain correct but the float sequence is partition-defined",
                ck_shards, config.num_shards,
            )
        result = ck.result
        result.resumed_from_epoch = ck.epoch
        best_state = ck.best_state
        start_epoch = ck.epoch
        last_written = ck.epoch
        snapshot = ck
        # Restore reduced working copies from the lossless float64
        # masters carried in the optimizer state (see seal.trainer).
        optimizer.sync_master_params()

    # Resuming a run that had already early-stopped: nothing left to do
    # (checked before spawning workers so none sit at a barrier forever).
    halted = (
        config.patience is not None
        and result.best_epoch is not None
        and start_epoch - 1 - result.best_epoch >= config.patience
    )

    tmp: Optional[tempfile.TemporaryDirectory] = None
    workers: List = []
    barrier = None
    report_queue = None
    reports: List[dict] = []
    spec = [(name, p.data.shape) for name, p in model.named_parameters()]
    named = list(model.named_parameters())
    params = model.parameters()
    max_norm = config.grad_clip if config.grad_clip is not None else np.inf

    if use_mp and not halted:
        if any(not s.graph.is_mmap for s in partition.shards):
            tmp = tempfile.TemporaryDirectory(prefix="repro-partition-")
            partition.save(tmp.name)
            partition = GraphPartition.open(tmp.name, mmap=True)
        buffer = ParameterBuffer.create(spec, config.num_shards)
    else:
        buffer = ParameterBuffer.local(spec, config.num_shards)

    shard_tasks = [shard_task(task, s) for s in partition.shards]
    shard_grad_seconds = np.zeros(config.num_shards)
    shard_links = np.zeros(config.num_shards, dtype=np.int64)
    shard_steps = np.zeros(config.num_shards, dtype=np.int64)

    model.train()
    for cb in cbs:
        cb.on_train_begin(config, result)

    def write_snapshot(snap: Checkpoint) -> None:
        nonlocal last_written
        save_checkpoint(checkpoint_path(checkpoint.dir, snap.epoch), snap)
        prune_checkpoints(checkpoint.dir, checkpoint.keep_last)
        last_written = snap.epoch

    def make_snapshot(epoch: int) -> Checkpoint:
        snap = _snapshot(epoch, model, optimizer, gens, result, best_state, config)
        snap.train_config["num_shards"] = config.num_shards
        return snap

    if use_mp and not halted:
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork") if "fork" in methods else mp.get_context()
        barrier = ctx.Barrier(config.num_shards + 1)
        report_queue = ctx.Queue()
        buffer.put_params(_named_arrays(model))
        buffer.set_command(CMD_RUN)
        shuffle_state = generator_state(shuffle_rng)
        for rank in range(config.num_shards):
            w = ctx.Process(
                target=_worker_main,
                args=(
                    rank,
                    model,
                    shard_tasks[rank],
                    partition.shards[rank].owned_links,
                    train_indices,
                    config,
                    start_epoch,
                    shuffle_state,
                    buffer.meta,
                    barrier,
                    report_queue,
                    dataset.rng_seed,
                ),
                daemon=True,
                name=f"repro-shard-{rank}",
            )
            w.start()
            workers.append(w)
        shard_datasets: List[Optional[SEALDataset]] = []
        owned_masks: List[np.ndarray] = []
    else:
        shard_datasets = [SEALDataset(t, rng=dataset.rng_seed) for t in shard_tasks]
        owned_masks = []
        for shard in partition.shards:
            mask = np.zeros(task.num_links, dtype=bool)
            mask[shard.owned_links] = True
            owned_masks.append(mask)

    bad_streak = 0
    try:
        for epoch in range(start_epoch, config.epochs):
            if halted:
                break
            perm = shuffle_rng.permutation(train_indices)
            epoch_losses: list = []
            epoch_start = watch.totals["epoch"]
            abort_exc: Optional[NonFiniteLossError] = None
            with watch.segment("epoch"):
                for start in range(0, len(perm), config.batch_size):
                    gbatch = perm[start : start + config.batch_size]
                    if use_mp:
                        t0 = time.perf_counter()
                        barrier.wait(config.barrier_timeout)  # A: grads ready
                        obs.observe(
                            "distributed.barrier_wait_seconds",
                            time.perf_counter() - t0,
                        )
                    else:
                        for rank in range(config.num_shards):
                            mine = gbatch[owned_masks[rank][gbatch]]
                            t0 = time.perf_counter()
                            # _shard_step_grads traces forward/backward itself.
                            with watch.segment("forward"):
                                grads, loss, count = _shard_step_grads(
                                    model, shard_datasets[rank], mine, len(gbatch)
                                )
                            shard_grad_seconds[rank] += time.perf_counter() - t0
                            shard_links[rank] += int(mine.size)
                            shard_steps[rank] += 1
                            buffer.put_grads(rank, grads, loss, count)
                    with watch.segment("optimizer"), obs.trace("optimizer"):
                        loss_val = buffer.reduce_loss()
                        step_ok = bool(np.isfinite(loss_val))
                        grad_norm = None
                        if step_ok:
                            reduced = buffer.reduce_grads()
                            for name, p in named:
                                p.grad = reduced[name]
                            grad_norm = clip_grad_norm(params, max_norm)
                            step_ok = bool(np.isfinite(grad_norm))
                        if step_ok:
                            optimizer.step()
                            epoch_losses.append(loss_val)
                            bad_streak = 0
                        else:
                            bad_streak += 1
                            result.nonfinite_steps += 1
                            obs.count("train.nonfinite_steps")
                            logger.warning(
                                "non-finite step skipped at epoch %d (loss=%s, "
                                "grad_norm=%s; %d consecutive)",
                                epoch + 1, loss_val, grad_norm, bad_streak,
                            )
                            if bad_streak >= config.max_nonfinite_steps:
                                abort_exc = NonFiniteLossError(
                                    f"{bad_streak} consecutive non-finite steps "
                                    f"at epoch {epoch + 1} (last loss={loss_val}, "
                                    f"grad_norm={grad_norm}); weights are intact "
                                    "up to the last finite step — check lr "
                                    f"({config.lr}) and input features"
                                )
                    obs.count("distributed.steps")
                    if use_mp:
                        buffer.put_params(_named_arrays(model))
                        buffer.set_command(CMD_ABORT if abort_exc else CMD_RUN)
                        barrier.wait(config.barrier_timeout)  # B: params ready
                    if abort_exc is not None:
                        raise abort_exc
            result.losses.append(float(np.mean(epoch_losses)) if epoch_losses else 0.0)
            result.epoch_seconds.append(watch.totals["epoch"] - epoch_start)
            result.epochs_run = epoch + 1

            if eval_indices is not None:
                with watch.segment("eval"):
                    epoch_eval: EvalResult = evaluate(
                        model,
                        dataset,
                        eval_indices,
                        batch_size=config.eval_batch_size,
                        num_workers=config.num_workers,
                    )
                result.eval_auc.append(epoch_eval.auc)
                result.eval_ap.append(epoch_eval.ap)
                if (
                    result.best_epoch is None
                    or epoch_eval.auc > result.eval_auc[result.best_epoch]
                ):
                    result.best_epoch = epoch
                    if config.restore_best:
                        best_state = model.state_dict()
            _update_phase_seconds(result, watch)
            if checkpoint is not None:
                snapshot = make_snapshot(epoch + 1)
                if (epoch + 1) % checkpoint.every == 0 or epoch + 1 == config.epochs:
                    write_snapshot(snapshot)
            for cb in cbs:
                cb.on_epoch_end(epoch, result)
            stop = bool(
                config.patience is not None
                and result.best_epoch is not None
                and epoch - result.best_epoch >= config.patience
            )
            if use_mp:
                last = stop or epoch + 1 == config.epochs
                buffer.set_command(CMD_STOP if last else CMD_RUN)
                barrier.wait(config.barrier_timeout)  # E: epoch verdict
            if stop:
                logger.info(
                    "early stop at epoch %d (best was %d)",
                    epoch + 1, result.best_epoch + 1,
                )
                break
        if use_mp and not halted:
            reports = _drain_reports(report_queue, config.num_shards)
    except (KeyboardInterrupt, NonFiniteLossError):
        if checkpoint is not None and snapshot is not None and snapshot.epoch > last_written:
            write_snapshot(snapshot)
        raise
    except BrokenBarrierError:
        # A worker died or a barrier timed out: persist what completed,
        # surface whatever the workers managed to report.
        if checkpoint is not None and snapshot is not None and snapshot.epoch > last_written:
            write_snapshot(snapshot)
        reports = _drain_reports(report_queue, config.num_shards, timeout=2.0)
        errors = [r["error"] for r in reports if "error" in r]
        detail = f": {'; '.join(errors)}" if errors else ""
        raise RuntimeError(
            f"distributed training aborted — a shard worker failed or a "
            f"barrier timed out after {config.barrier_timeout}s{detail}"
        ) from None
    finally:
        if use_mp:
            if barrier is not None:
                try:
                    barrier.abort()
                except Exception:
                    pass
            for w in workers:
                w.join(timeout=10.0)
            for w in workers:
                if w.is_alive():  # pragma: no cover - stuck worker
                    w.terminate()
                    w.join(timeout=10.0)
        buffer.close()
        if tmp is not None:
            tmp.cleanup()

    for report in reports:
        if "error" in report:
            continue
        rank = int(report["rank"])
        shard_grad_seconds[rank] += float(report["grad_seconds"])
        shard_links[rank] += int(report["links"])
        shard_steps[rank] += int(report["steps"])
    if obs.enabled():
        for rank in range(config.num_shards):
            obs.count("distributed.shard.links", int(shard_links[rank]))
            if shard_steps[rank]:
                obs.observe(
                    "distributed.shard.step_seconds",
                    float(shard_grad_seconds[rank] / shard_steps[rank]),
                )

    if checkpoint is not None and snapshot is not None and snapshot.epoch > last_written:
        write_snapshot(snapshot)
    for cb in cbs:
        cb.on_train_end(result)
    if config.restore_best and best_state is not None:
        model.load_state_dict(best_state)
        logger.info(
            "restored best epoch %d (auc=%.4f)", result.best_epoch + 1, result.best_auc
        )
    return result


def _drain_reports(queue, expected: int, *, timeout: float = 30.0) -> List[dict]:
    """Collect up to ``expected`` worker reports, bounded by ``timeout``."""
    if queue is None:
        return []
    reports: List[dict] = []
    deadline = time.monotonic() + timeout
    while len(reports) < expected:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        try:
            reports.append(queue.get(timeout=remaining))
        except Exception:
            break
    return reports
