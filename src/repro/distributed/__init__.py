"""repro.distributed — sharded graphs and data-parallel training.

The scale-out layer of the pipeline (ROADMAP item: sharded graph +
data-parallel training):

* :func:`partition_graph` splits a link task's graph into K shards —
  ``hash`` (stateless splitmix64 owner assignment) or ``greedy``
  (streaming edge-cut) — each with a halo covering everything SEAL
  extraction can reach from its owned links, persisted zero-copy via
  the :mod:`repro.store` mmap format (:meth:`GraphPartition.save`).
* :func:`train_data_parallel` trains one model over those shards,
  either in-process (``processes=0``, the bit-identity reference) or
  with one worker process per shard exchanging gradients through a
  shared-memory :class:`~repro.store.ParameterBuffer` with a barrier
  per step. K-shard training is bit-identical to the in-process
  reference, resumes through the standard
  :mod:`repro.seal.checkpoint` bundles, and reduces exactly to
  :func:`repro.seal.train` at ``num_shards=1``.
"""

from repro.distributed.partition import (
    GraphPartition,
    Shard,
    greedy_node_owners,
    hash_node_owners,
    partition_graph,
    shard_task,
)
from repro.distributed.trainer import DistributedConfig, train_data_parallel

__all__ = [
    "GraphPartition",
    "Shard",
    "hash_node_owners",
    "greedy_node_owners",
    "partition_graph",
    "shard_task",
    "DistributedConfig",
    "train_data_parallel",
]
