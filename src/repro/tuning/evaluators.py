"""Ready-made tuner objectives over the SEAL training pipeline.

Every tuner in :mod:`repro.tuning` consumes a ``config -> score``
callable. :func:`make_seal_evaluator` builds the standard one — train a
fresh model on a fixed split, return held-out AUC — on top of the
:mod:`repro.data` loader, so tuning runs inherit the shared subgraph
store (extraction cost is paid once across all trials) and the
``num_workers`` scaling of the rest of the pipeline.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.seal.evaluator import evaluate
from repro.seal.trainer import TrainConfig, train
from repro.tuning.space import Value

__all__ = ["make_seal_evaluator"]


def make_seal_evaluator(
    dataset,
    train_indices: Sequence[int],
    valid_indices: Sequence[int],
    build_model: Callable[[Dict[str, Value]], object],
    *,
    epochs: int = 5,
    batch_size: int = 16,
    num_workers: int = 0,
    rng=1,
) -> Callable[[Dict[str, Value]], float]:
    """Build the standard SEAL tuning objective: train, return val AUC.

    Parameters
    ----------
    dataset: a :class:`~repro.seal.SEALDataset` (its subgraph store is
        shared across trials — warm it once up front with
        :func:`repro.data.warm` to keep extraction out of trial timings).
    train_indices / valid_indices: fixed tuning split.
    build_model: ``config -> Module`` factory; called once per trial so
        every configuration starts from a fresh (reproducible) model.
    epochs / batch_size: reduced-scale training budget per trial.
    num_workers: extraction worker processes for train and eval loaders.
    rng: seed shared by every trial (isolates the config's effect).
    """

    def evaluator(config: Dict[str, Value]) -> float:
        model = build_model(config)
        train(
            model,
            dataset,
            train_indices,
            TrainConfig(
                epochs=epochs,
                batch_size=batch_size,
                lr=float(config.get("lr", 1e-3)),
                num_workers=num_workers,
            ),
            rng=rng,
        )
        return evaluate(
            model, dataset, valid_indices, num_workers=num_workers
        ).auc

    return evaluator
