"""Random-search baseline for the tuner comparison benchmark."""

from __future__ import annotations

import time
from typing import Callable, Dict

from repro import obs
from repro.tuning.cbo import Trial, TuneResult
from repro.tuning.space import SearchSpace, Value
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["random_search"]


def random_search(
    space: SearchSpace,
    evaluator: Callable[[Dict[str, Value]], float],
    n_trials: int,
    rng: RngLike = 0,
) -> TuneResult:
    """Evaluate ``n_trials`` uniform random configurations."""
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    gen = ensure_rng(rng)
    result = TuneResult()
    for i in range(n_trials):
        config = space.sample(gen)
        t0 = time.perf_counter()
        with obs.trace("trial"):
            score = float(evaluator(config))
        elapsed = time.perf_counter() - t0
        obs.count("tuning.trials")
        obs.observe("tuning.trial_seconds", elapsed)
        result.trials.append(Trial(config=config, score=score, index=i, seconds=elapsed))
    return result
