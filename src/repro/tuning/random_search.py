"""Random-search baseline for the tuner comparison benchmark."""

from __future__ import annotations

from typing import Callable, Dict

from repro.tuning.cbo import TuneResult, execute_trial
from repro.tuning.space import SearchSpace, Value
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["random_search"]


def random_search(
    space: SearchSpace,
    evaluator: Callable[[Dict[str, Value]], float],
    n_trials: int,
    rng: RngLike = 0,
) -> TuneResult:
    """Evaluate ``n_trials`` uniform random configurations."""
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    gen = ensure_rng(rng)
    result = TuneResult()
    for i in range(n_trials):
        result.trials.append(execute_trial(evaluator, space.sample(gen), i))
    return result
