"""Acquisition functions for Bayesian optimization (maximization form)."""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import FLOAT64
from scipy.stats import norm

__all__ = ["expected_improvement", "upper_confidence_bound"]


def expected_improvement(
    mean: np.ndarray,
    std: np.ndarray,
    best: float,
    xi: float = 0.01,
) -> np.ndarray:
    """EI for maximization: ``E[max(f - best - xi, 0)]`` under N(mean, std²).

    Zero where ``std`` vanishes (already-observed points).
    """
    mean = np.asarray(mean, dtype=FLOAT64)
    std = np.asarray(std, dtype=FLOAT64)
    improve = mean - best - xi
    with np.errstate(divide="ignore", invalid="ignore"):
        z = np.where(std > 0, improve / std, 0.0)
    ei = improve * norm.cdf(z) + std * norm.pdf(z)
    return np.where(std > 1e-12, np.maximum(ei, 0.0), 0.0)


def upper_confidence_bound(mean: np.ndarray, std: np.ndarray, kappa: float = 1.96) -> np.ndarray:
    """UCB: ``mean + kappa · std``."""
    return np.asarray(mean) + kappa * np.asarray(std)
