"""Hyperparameter search-space definition (paper Table I).

A :class:`SearchSpace` is an ordered set of named dimensions. Each
dimension knows how to sample itself, how to encode a value into the
GP's continuous design space (log-scaled floats, normalized integers,
one-hot choices), and how to decode back. The paper's space::

    lr      ∈ [1e-6, 1e-2]      (log-uniform)
    hidden  ∈ {16, 32, 64, 128} (choice)
    sort_k  ∈ {5..150}          (integer)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.nn.dtype import FLOAT64

from repro.utils.rng import RngLike, ensure_rng

__all__ = ["Real", "Integer", "Choice", "SearchSpace", "paper_table1_space"]

Value = Union[float, int]


@dataclass(frozen=True)
class Real:
    """Continuous dimension, optionally log-scaled."""

    name: str
    low: float
    high: float
    log: bool = False

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise ValueError(f"{self.name}: low must be < high")
        if self.log and self.low <= 0:
            raise ValueError(f"{self.name}: log scale requires positive bounds")

    @property
    def encoded_width(self) -> int:
        return 1

    def sample(self, gen: np.random.Generator) -> float:
        if self.log:
            return float(np.exp(gen.uniform(np.log(self.low), np.log(self.high))))
        return float(gen.uniform(self.low, self.high))

    def encode(self, value: float) -> np.ndarray:
        if self.log:
            lo, hi = np.log(self.low), np.log(self.high)
            return np.array([(np.log(value) - lo) / (hi - lo)])
        return np.array([(value - self.low) / (self.high - self.low)])

    def decode(self, unit: np.ndarray) -> float:
        u = float(np.clip(unit[0], 0.0, 1.0))
        if self.log:
            lo, hi = np.log(self.low), np.log(self.high)
            return float(np.exp(lo + u * (hi - lo)))
        return float(self.low + u * (self.high - self.low))


@dataclass(frozen=True)
class Integer:
    """Integer range dimension (inclusive bounds)."""

    name: str
    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise ValueError(f"{self.name}: low must be < high")

    @property
    def encoded_width(self) -> int:
        return 1

    def sample(self, gen: np.random.Generator) -> int:
        return int(gen.integers(self.low, self.high + 1))

    def encode(self, value: int) -> np.ndarray:
        return np.array([(value - self.low) / (self.high - self.low)])

    def decode(self, unit: np.ndarray) -> int:
        u = float(np.clip(unit[0], 0.0, 1.0))
        return int(round(self.low + u * (self.high - self.low)))


@dataclass(frozen=True)
class Choice:
    """Categorical dimension over a fixed option tuple (one-hot encoded)."""

    name: str
    options: Tuple[Value, ...]

    def __post_init__(self) -> None:
        if len(self.options) < 2:
            raise ValueError(f"{self.name}: need at least two options")

    @property
    def encoded_width(self) -> int:
        return len(self.options)

    def sample(self, gen: np.random.Generator) -> Value:
        return self.options[int(gen.integers(0, len(self.options)))]

    def encode(self, value: Value) -> np.ndarray:
        out = np.zeros(len(self.options))
        out[self.options.index(value)] = 1.0
        return out

    def decode(self, unit: np.ndarray) -> Value:
        return self.options[int(np.argmax(unit))]


Dimension = Union[Real, Integer, Choice]


class SearchSpace:
    """An ordered collection of dimensions with encode/decode/sample."""

    def __init__(self, dimensions: Sequence[Dimension]):
        if not dimensions:
            raise ValueError("search space must have at least one dimension")
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise ValueError("dimension names must be unique")
        self.dimensions: List[Dimension] = list(dimensions)

    @property
    def encoded_width(self) -> int:
        """Total width of the continuous encoding."""
        return sum(d.encoded_width for d in self.dimensions)

    def sample(self, gen_or_seed: RngLike = None) -> Dict[str, Value]:
        """One random configuration."""
        gen = ensure_rng(gen_or_seed)
        return {d.name: d.sample(gen) for d in self.dimensions}

    def encode(self, config: Dict[str, Value]) -> np.ndarray:
        """Encode a configuration into ``[0,1]^encoded_width``."""
        parts = [d.encode(config[d.name]) for d in self.dimensions]
        return np.concatenate(parts)

    def decode(self, vec: np.ndarray) -> Dict[str, Value]:
        """Decode a continuous vector back to a configuration."""
        vec = np.asarray(vec, dtype=FLOAT64)
        if vec.shape != (self.encoded_width,):
            raise ValueError("encoded vector has wrong width")
        out: Dict[str, Value] = {}
        i = 0
        for d in self.dimensions:
            out[d.name] = d.decode(vec[i : i + d.encoded_width])
            i += d.encoded_width
        return out

    def contains(self, config: Dict[str, Value]) -> bool:
        """Whether every value lies inside its dimension."""
        for d in self.dimensions:
            v = config.get(d.name)
            if v is None:
                return False
            if isinstance(d, Real) and not (d.low <= v <= d.high):
                return False
            if isinstance(d, Integer) and not (d.low <= v <= d.high and float(v).is_integer()):
                return False
            if isinstance(d, Choice) and v not in d.options:
                return False
        return True


def paper_table1_space() -> SearchSpace:
    """The exact hyperparameter space of paper Table I."""
    return SearchSpace(
        [
            Real("lr", 1e-6, 1e-2, log=True),
            Choice("hidden_dim", (16, 32, 64, 128)),
            Integer("sort_k", 5, 150),
        ]
    )
