"""Centralized Bayesian Optimization — the DeepHyper stand-in (paper §III-D).

The paper auto-tunes AM-DGCNN/DGCNN hyperparameters with DeepHyper's
Centralized Bayesian Optimization search. This module implements the same
loop: a GP surrogate fit on (encoded config → score) observations, an
expected-improvement acquisition maximized over a random candidate pool,
and an initial random-exploration phase.

The evaluator is an arbitrary callable ``config -> score`` (higher is
better — e.g. held-out AUC), mirroring DeepHyper's evaluator-function
interface.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro import obs
from repro.tuning.acquisition import expected_improvement
from repro.tuning.gp import GaussianProcess
from repro.tuning.space import SearchSpace, Value
from repro.utils.logging import get_logger
from repro.utils.rng import (
    RngLike,
    ensure_rng,
    generator_state,
    restore_generator_state,
)
from repro.utils.serialization import load_json, save_json

__all__ = ["Trial", "TuneResult", "CBOTuner", "execute_trial"]

logger = get_logger("tuning.cbo")


@dataclass
class Trial:
    """One evaluated configuration.

    ``seconds`` is the wall-clock cost of the evaluator call — the
    per-trial cost trace tuner-efficiency comparisons plot.
    """

    config: Dict[str, Value]
    score: float
    index: int
    seconds: float = 0.0


@dataclass
class TuneResult:
    """Outcome of a tuning run."""

    trials: List[Trial] = field(default_factory=list)

    @property
    def best(self) -> Trial:
        if not self.trials:
            raise RuntimeError("no trials were run")
        return max(self.trials, key=lambda t: t.score)

    @property
    def best_config(self) -> Dict[str, Value]:
        return self.best.config

    @property
    def best_score(self) -> float:
        return self.best.score

    def score_trace(self) -> np.ndarray:
        """Best-so-far score after each trial (monotone non-decreasing)."""
        return np.maximum.accumulate([t.score for t in self.trials])


def execute_trial(
    evaluator: Callable[[Dict[str, Value]], float],
    config: Dict[str, Value],
    index: int,
) -> Trial:
    """Run one tuner trial: time + trace the evaluator call.

    The single trial-execution path shared by every search strategy, so
    all tuners emit identical ``tuning.*`` counters and ``trial`` traces.
    """
    t0 = time.perf_counter()
    with obs.trace("trial"):
        score = float(evaluator(config))
    elapsed = time.perf_counter() - t0
    obs.count("tuning.trials")
    obs.observe("tuning.trial_seconds", elapsed)
    return Trial(config=config, score=score, index=index, seconds=elapsed)


class CBOTuner:
    """GP-EI Bayesian optimization over a :class:`SearchSpace`.

    Parameters
    ----------
    space: the search space (e.g. ``paper_table1_space()``).
    n_initial: random-exploration trials before the surrogate kicks in.
    candidate_pool: random candidates scored by EI per iteration.
    xi: EI exploration bonus.
    """

    def __init__(
        self,
        space: SearchSpace,
        n_initial: int = 5,
        candidate_pool: int = 256,
        xi: float = 0.01,
        rng: RngLike = 0,
    ):
        if n_initial < 1:
            raise ValueError("n_initial must be >= 1")
        if candidate_pool < 8:
            raise ValueError("candidate_pool must be >= 8")
        self.space = space
        self.n_initial = n_initial
        self.candidate_pool = candidate_pool
        self.xi = xi
        self._gen = ensure_rng(rng)

    def suggest(self, trials: List[Trial]) -> Dict[str, Value]:
        """Next configuration to evaluate given past trials."""
        if len(trials) < self.n_initial:
            return self.space.sample(self._gen)
        x = np.stack([self.space.encode(t.config) for t in trials])
        y = np.array([t.score for t in trials])
        gp = GaussianProcess().fit(x, y)
        candidates = [self.space.sample(self._gen) for _ in range(self.candidate_pool)]
        enc = np.stack([self.space.encode(c) for c in candidates])
        mean, std = gp.predict(enc)
        ei = expected_improvement(mean, std, best=float(y.max()), xi=self.xi)
        return candidates[int(np.argmax(ei))]

    def run(
        self,
        evaluator: Callable[[Dict[str, Value]], float],
        n_trials: int,
        *,
        callback: Optional[Callable[[Trial], None]] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        resume: bool = True,
    ) -> TuneResult:
        """Run the full tuning loop for ``n_trials`` evaluations.

        With ``checkpoint_path`` the trial log (configs, scores, the
        suggestion stream's RNG state) is rewritten atomically after
        every trial, so a killed sweep rerun with the same arguments
        restarts from its completed trials — the surrogate refits on the
        restored history and the loop finishes the remaining budget —
        instead of re-evaluating everything.
        """
        if n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        result = TuneResult()
        if checkpoint_path is not None:
            checkpoint_path = Path(checkpoint_path)
            if resume and checkpoint_path.exists():
                result.trials = self._restore_trials(checkpoint_path)
                obs.count("tuning.trials_restored", float(len(result.trials)))
                logger.info(
                    "resumed tuning from %s: %d/%d trials already done",
                    checkpoint_path, len(result.trials), n_trials,
                )
        for i in range(len(result.trials), n_trials):
            with obs.trace("suggest"):
                config = self.suggest(result.trials)
            trial = execute_trial(evaluator, config, i)
            result.trials.append(trial)
            if checkpoint_path is not None:
                self._write_trials(checkpoint_path, result.trials)
            logger.info(
                "trial %d score=%.4f %.2fs config=%s",
                i, trial.score, trial.seconds, config,
            )
            if callback is not None:
                callback(trial)
        return result

    # -- trial-log checkpointing -------------------------------------- #
    def _write_trials(self, path: Path, trials: List[Trial]) -> None:
        save_json(
            path,
            {
                "version": 1,
                "trials": [
                    {
                        "config": t.config,
                        "score": t.score,
                        "index": t.index,
                        "seconds": t.seconds,
                    }
                    for t in trials
                ],
                "rng_state": generator_state(self._gen),
            },
        )

    def _restore_trials(self, path: Path) -> List[Trial]:
        payload = load_json(path)
        if payload.get("version") != 1:
            raise ValueError(f"unsupported tuning checkpoint version in {path}")
        rng_state = payload.get("rng_state")
        if rng_state is not None:
            # Rewind the suggestion stream so resumed sampling continues
            # where the killed run left off (reproducible sweeps).
            restore_generator_state(self._gen, rng_state)
        return [
            Trial(
                config=dict(t["config"]),
                score=float(t["score"]),
                index=int(t["index"]),
                seconds=float(t.get("seconds", 0.0)),
            )
            for t in payload["trials"]
        ]
