"""Gaussian-process regression surrogate for Bayesian optimization.

A compact, numerically careful GP with Matérn-5/2 or RBF kernels on the
unit-cube encoded design space, exact Cholesky inference and per-fit
hyperparameter selection by marginal-likelihood grid search over length
scales. Sufficient for the ≤ a-few-hundred-point fits of the CBO loop
(the DeepHyper stand-in — see DESIGN.md §2).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.dtype import FLOAT64
from scipy.linalg import cho_factor, cho_solve

__all__ = ["rbf_kernel", "matern52_kernel", "GaussianProcess"]


def _sqdist(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances ``(len(a), len(b))``."""
    aa = (a * a).sum(axis=1)[:, None]
    bb = (b * b).sum(axis=1)[None, :]
    return np.maximum(aa + bb - 2.0 * (a @ b.T), 0.0)


def rbf_kernel(a: np.ndarray, b: np.ndarray, length_scale: float = 0.3) -> np.ndarray:
    """Squared-exponential kernel ``exp(-d²/2ℓ²)``."""
    return np.exp(-0.5 * _sqdist(a, b) / length_scale**2)


def matern52_kernel(a: np.ndarray, b: np.ndarray, length_scale: float = 0.3) -> np.ndarray:
    """Matérn-5/2 kernel (the BO default — twice-differentiable, not overly smooth)."""
    d = np.sqrt(_sqdist(a, b)) / length_scale
    s5 = np.sqrt(5.0)
    return (1.0 + s5 * d + 5.0 * d * d / 3.0) * np.exp(-s5 * d)


class GaussianProcess:
    """Exact GP regression with observation noise.

    Parameters
    ----------
    kernel: ``"matern52"`` or ``"rbf"``.
    noise: observation noise variance added to the kernel diagonal
        (also acts as jitter for stability).
    length_scales: grid searched by marginal likelihood at fit time.
    """

    def __init__(
        self,
        kernel: str = "matern52",
        noise: float = 1e-4,
        length_scales: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.5, 1.0),
    ):
        if kernel not in ("matern52", "rbf"):
            raise ValueError("kernel must be 'matern52' or 'rbf'")
        if noise <= 0:
            raise ValueError("noise must be positive")
        self._kfn = matern52_kernel if kernel == "matern52" else rbf_kernel
        self.noise = noise
        self.length_scales = length_scales
        self._x: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol = None
        self._mean = 0.0
        self._std = 1.0
        self.length_scale = length_scales[0]

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Fit on observations (targets standardized internally)."""
        x = np.atleast_2d(np.asarray(x, dtype=FLOAT64))
        y = np.asarray(y, dtype=FLOAT64).ravel()
        if len(x) != len(y):
            raise ValueError("x and y must have equal length")
        if len(x) == 0:
            raise ValueError("cannot fit on zero observations")
        self._mean = float(y.mean())
        self._std = float(y.std()) or 1.0
        yn = (y - self._mean) / self._std

        best = (-np.inf, None, None, None)
        for ls in self.length_scales:
            k = self._kfn(x, x, ls) + self.noise * np.eye(len(x))
            try:
                chol = cho_factor(k, lower=True)
            except np.linalg.LinAlgError:  # pragma: no cover - jitter guard
                continue
            alpha = cho_solve(chol, yn)
            logdet = 2.0 * np.log(np.diag(chol[0])).sum()
            mll = -0.5 * float(yn @ alpha) - 0.5 * logdet - 0.5 * len(x) * np.log(2 * np.pi)
            if mll > best[0]:
                best = (mll, ls, chol, alpha)
        if best[1] is None:  # pragma: no cover - all factorizations failed
            raise np.linalg.LinAlgError("GP fit failed for every length scale")
        _, self.length_scale, self._chol, self._alpha = best
        self._x = x
        return self

    def predict(self, x_new: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at ``x_new``."""
        if self._x is None:
            raise RuntimeError("GP is not fitted")
        x_new = np.atleast_2d(np.asarray(x_new, dtype=FLOAT64))
        k_star = self._kfn(x_new, self._x, self.length_scale)
        mean = k_star @ self._alpha
        v = cho_solve(self._chol, k_star.T)
        prior_var = np.diag(self._kfn(x_new, x_new, self.length_scale))
        var = np.maximum(prior_var - (k_star * v.T).sum(axis=1), 1e-12)
        return self._mean + self._std * mean, self._std * np.sqrt(var)
