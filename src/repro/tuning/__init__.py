"""Hyperparameter auto-tuning: GP-EI Bayesian optimization (DeepHyper stand-in)."""

from repro.tuning.acquisition import expected_improvement, upper_confidence_bound
from repro.tuning.cbo import CBOTuner, Trial, TuneResult, execute_trial
from repro.tuning.evaluators import make_seal_evaluator
from repro.tuning.gp import GaussianProcess, matern52_kernel, rbf_kernel
from repro.tuning.random_search import random_search
from repro.tuning.space import (
    Choice,
    Integer,
    Real,
    SearchSpace,
    paper_table1_space,
)

__all__ = [
    "Real",
    "Integer",
    "Choice",
    "SearchSpace",
    "paper_table1_space",
    "GaussianProcess",
    "rbf_kernel",
    "matern52_kernel",
    "expected_improvement",
    "upper_confidence_bound",
    "CBOTuner",
    "Trial",
    "TuneResult",
    "execute_trial",
    "make_seal_evaluator",
    "random_search",
]
