"""SortPooling readout (Zhang et al., AAAI'18).

Turns the variable-size node embedding matrix of each graph in a batch
into a fixed ``(k, F)`` block: nodes are sorted descending by their last
feature channel (the "continuous WL color" produced by the final 1-channel
graph convolution), the top ``k`` rows are kept, and graphs with fewer
than ``k`` nodes are zero-padded. Gradients flow only through the
retained rows.

The whole batch is pooled with a single ``gather`` — a per-graph sort is
expressed as one ``np.lexsort`` over (graph id, -key).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import kernels
from repro.nn.indexing import gather
from repro.nn.kernels import SegmentPlan
from repro.nn.module import Module
from repro.nn.tensor import Tensor, as_tensor

__all__ = ["SortPooling", "sort_pool"]


def sort_pool(
    x: Tensor,
    batch: np.ndarray,
    num_graphs: int,
    k: int,
    *,
    plan: Optional[SegmentPlan] = None,
) -> Tensor:
    """Sort-pool node embeddings into ``(num_graphs, k, F)``.

    Parameters
    ----------
    x: ``(N, F)`` node embeddings for the whole batch.
    batch: ``(N,)`` graph id per node.
    num_graphs: number of graphs ``B``.
    k: retained nodes per graph.
    plan: optional :class:`SegmentPlan` over ``(batch, num_graphs)`` —
        supplies the per-graph counts/starts without re-deriving them.
        The per-graph key sort is data-dependent and always recomputed.
    """
    x = as_tensor(x)
    if k <= 0:
        raise ValueError("k must be positive")
    batch = np.asarray(batch)
    n, f = x.shape
    if batch.shape != (n,):
        raise ValueError("batch must have one entry per node")

    key = x.data[:, -1]
    # Rows grouped by graph, descending key inside each graph. lexsort
    # sorts by last key first, so order: primary batch, secondary -key.
    order = np.lexsort((-key, batch))
    plan = kernels.resolve_plan(plan)
    if plan is not None:
        plan.check(batch, num_graphs)
        counts = plan.counts
        starts = plan.indptr[:-1]
    else:
        counts = np.bincount(batch, minlength=num_graphs)
        starts = np.concatenate([[0], np.cumsum(counts)[:-1]])

    # Selection matrix (B, k): row indices into `order`, -1 where padded.
    offsets = np.arange(k)[None, :]
    sel = starts[:, None] + offsets  # (B, k) positions in `order`
    valid = offsets < counts[:, None]
    sel_rows = np.where(valid, order[np.minimum(sel, n - 1)], 0)

    pooled = gather(x, sel_rows.ravel())  # (B*k, F)
    mask = valid.astype(x.data.dtype).reshape(num_graphs * k, 1)
    pooled = pooled * Tensor(mask)
    return pooled.reshape(num_graphs, k, f)


class SortPooling(Module):
    """Module wrapper around :func:`sort_pool` with a fixed ``k``."""

    def __init__(self, k: int):
        super().__init__()
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k

    def forward(
        self,
        x: Tensor,
        batch: np.ndarray,
        num_graphs: int,
        *,
        plan: Optional[SegmentPlan] = None,
    ) -> Tensor:
        return sort_pool(x, batch, num_graphs, self.k, plan=plan)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SortPooling(k={self.k})"
