"""AM-DGCNN — the paper's proposed model (§III-C, Fig. 2).

The Augmented Model of DGCNN replaces every GCN message-passing layer of
the DGCNN backbone with a multi-head :class:`~repro.models.layers.GATConv`
that consumes edge attributes: attention logits include a learned
projection of each edge's attribute vector, so the aggregation weights —
and hence the node embeddings fed to SortPooling — carry link information.
Everything downstream (SortPooling, 1-D convolutions, dense classifier)
is identical to the vanilla model, isolating the contribution of
attention + edge attributes.
"""

from __future__ import annotations

import numpy as np

from repro.models.dgcnn import DGCNNBackbone
from repro.models.layers import GATConv
from repro.nn.module import Module
from repro.utils.rng import RngLike

__all__ = ["AMDGCNN"]


class AMDGCNN(DGCNNBackbone):
    """DGCNN backbone with GAT message passing over edge attributes.

    Parameters
    ----------
    in_dim: node-feature width.
    num_classes: output logits.
    edge_dim: edge-attribute width (0 degrades gracefully to a plain GAT —
        used for the Cora benchmark, which has no edge attributes).
    heads: attention heads per hidden layer. The final 1-channel sort
        layer always uses a single head (its output is the sort key).
    edge_in_message: project edge attributes into message contents in
        addition to attention logits (see
        :class:`~repro.models.layers.GATConv`; ablated in the benchmarks).
    hidden_dim / num_conv_layers / sort_k / dropout: as in the backbone;
        ``hidden_dim`` and ``sort_k`` are the auto-tuned hyperparameters
        of paper Table I.
    """

    def __init__(
        self,
        in_dim: int,
        num_classes: int,
        *,
        edge_dim: int = 0,
        heads: int = 2,
        edge_in_message: bool = True,
        hidden_dim: int = 32,
        num_conv_layers: int = 3,
        sort_k: int = 30,
        dropout: float = 0.5,
        center_pool: bool = True,
        rng: RngLike = None,
    ):
        if heads <= 0:
            raise ValueError("heads must be positive")
        self.edge_dim = edge_dim
        self.heads = heads
        self.edge_in_message = edge_in_message

        def factory(i: int, o: int, gen: np.random.Generator) -> Module:
            # Hidden layers use multi-head attention; the 1-wide sort-key
            # layer cannot split across heads.
            h = heads if o % heads == 0 and o >= heads else 1
            return GATConv(
                i, o, heads=h, edge_dim=edge_dim,
                edge_in_message=edge_in_message, rng=gen,
            )

        super().__init__(
            in_dim,
            num_classes,
            factory,
            hidden_dim=hidden_dim,
            num_conv_layers=num_conv_layers,
            sort_k=sort_k,
            dropout=dropout,
            center_pool=center_pool,
            rng=rng,
        )
