"""Relational GCN convolution (Schlichtkrull et al., ESWC'18).

R-GCN is the classical *non-attention* way to consume edge types:
per-relation weight matrices with basis decomposition,

.. math::
    x'_i = W_0 x_i + \\sum_{e: j→i} \\frac{1}{c_i}
           \\Big(\\sum_b \\langle a_e, C_{·b} \\rangle \\, x_j V_b\\Big),

where ``a_e`` is the edge's attribute vector (a relation one-hot in the
KG datasets, so ``a_e C`` selects relation ``r``'s basis coefficients),
``V_b`` are shared basis matrices, and ``c_i`` is the in-degree. Soft
(non-one-hot) attribute vectors — e.g. PrimeKG's compressed 2-d signs —
are handled naturally as mixtures of relations.

``RGCNDGCNN`` plugs this layer into the shared DGCNN backbone, giving an
extension model between vanilla DGCNN (edge-blind) and AM-DGCNN
(attention + edges): relation-aware but attention-free. The extension
benchmark compares all three.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.models.dgcnn import DGCNNBackbone
from repro.nn import init
from repro.nn.dtype import get_compute_dtype
from repro.nn.indexing import gather, segment_count, segment_sum
from repro.nn.kernels import PlanCache
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, as_tensor
from repro.utils.rng import RngLike, as_generator

__all__ = ["RGCNConv", "RGCNDGCNN"]


class RGCNConv(Module):
    """Basis-decomposed relational graph convolution.

    Parameters
    ----------
    in_dim / out_dim: layer widths.
    num_relations: width of the edge-attribute vectors (relation space).
    num_bases: shared bases ``B`` (≤ num_relations); controls parameters.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_relations: int,
        num_bases: int = 4,
        bias: bool = True,
        rng: RngLike = None,
    ):
        super().__init__()
        if min(in_dim, out_dim, num_relations, num_bases) <= 0:
            raise ValueError("dimensions must be positive")
        if num_bases > num_relations:
            num_bases = num_relations
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.num_relations = num_relations
        self.num_bases = num_bases
        gen = as_generator(rng)
        self.weight_self = Parameter(init.xavier_uniform((in_dim, out_dim), rng=gen))
        self.bases = Parameter(
            init.xavier_uniform((num_bases, in_dim, out_dim), rng=gen)
        )
        self.comb = Parameter(init.xavier_uniform((num_relations, num_bases), rng=gen))
        if bias:
            self.bias: Optional[Parameter] = Parameter(init.zeros((out_dim,)))
        else:
            self.register_parameter("bias", None)
            self.bias = None

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_attr: Optional[np.ndarray] = None,
        *,
        plans: Optional[PlanCache] = None,
    ) -> Tensor:
        x = as_tensor(x)
        n = x.shape[0]
        src, dst = edge_index
        e = edge_index.shape[1]
        src_plan = plans.src() if plans is not None else None
        dst_plan = plans.dst() if plans is not None else None
        if edge_attr is None or edge_attr.shape[1] == 0:
            # No relation information: every edge uses the uniform mixture.
            edge_attr = np.full((e, self.num_relations), 1.0 / self.num_relations)
        if edge_attr.shape[1] != self.num_relations:
            raise ValueError(
                f"edge_attr width {edge_attr.shape[1]} != num_relations {self.num_relations}"
            )

        h_src = gather(x, src, plan=src_plan)  # (E, in)
        coeff = Tensor(edge_attr) @ self.comb  # (E, B)
        messages: Optional[Tensor] = None
        for b in range(self.num_bases):
            # (E, out) weighted by this basis' per-edge coefficient.
            hb = h_src @ self.bases[b]
            term = hb * coeff[:, b].reshape(e, 1)
            messages = term if messages is None else messages + term
        agg = segment_sum(messages, dst, n, plan=dst_plan)
        if dst_plan is not None:
            degree = np.maximum(dst_plan.counts.astype(get_compute_dtype()), 1.0)[:, None]
        else:
            degree = np.maximum(segment_count(dst, n), 1.0)[:, None]
        out = x @ self.weight_self + agg * Tensor(1.0 / degree)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RGCNConv({self.in_dim}, {self.out_dim}, "
            f"relations={self.num_relations}, bases={self.num_bases})"
        )


class RGCNDGCNN(DGCNNBackbone):
    """DGCNN backbone with R-GCN message passing (relation-aware, no attention).

    The third column of the extension comparison: vanilla (edge-blind) <
    R-GCN (relation-aware convolution) ≤ AM-DGCNN (relation-aware
    attention) — ordering verified in ``benchmarks/test_extension_rgcn.py``.
    """

    def __init__(
        self,
        in_dim: int,
        num_classes: int,
        *,
        num_relations: int,
        num_bases: int = 4,
        hidden_dim: int = 32,
        num_conv_layers: int = 3,
        sort_k: int = 30,
        dropout: float = 0.5,
        center_pool: bool = True,
        rng: RngLike = None,
    ):
        if num_relations <= 0:
            raise ValueError("num_relations must be positive")
        self.num_relations = num_relations

        def factory(i: int, o: int, gen: np.random.Generator) -> Module:
            return RGCNConv(i, o, num_relations=num_relations, num_bases=num_bases, rng=gen)

        super().__init__(
            in_dim,
            num_classes,
            factory,
            hidden_dim=hidden_dim,
            num_conv_layers=num_conv_layers,
            sort_k=sort_k,
            dropout=dropout,
            center_pool=center_pool,
            rng=rng,
        )
