"""DGCNN graph classifier — shared readout for both models (paper Fig. 2).

The architecture (Zhang et al. AAAI'18, as used by SEAL):

1. A stack of graph-convolution layers with ``tanh`` activations; the last
   layer has width 1 and its output doubles as the SortPooling key.
2. All layer outputs concatenated → ``(N, sum(dims))``.
3. SortPooling to ``k`` nodes per graph.
4. ``Conv1d(1→16, kernel=stride=total_dim)`` — a learned per-node
   projection over the flattened sorted sequence.
5. ``MaxPool1d(2)`` then ``Conv1d(16→32, kernel=5, stride=1)``.
6. Dense(128) + ReLU + Dropout(0.5) + Dense(num_classes) → logits.

:class:`DGCNNBackbone` is parameterized by the message-passing layer
factory; :class:`VanillaDGCNN` (GCN layers — edge-attr blind) and
:class:`AMDGCNN` in :mod:`repro.models.am_dgcnn` (GAT layers with edge
attributes) both instantiate it, so the *only* difference between the two
models is exactly the modification the paper proposes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.graph.batch import GraphBatch
from repro.nn import functional as F
from repro.nn import kernels
from repro.nn.conv import Conv1d, MaxPool1d
from repro.nn.dense import Dropout, Linear
from repro.nn.indexing import gather
from repro.nn.kernels import PlanCache
from repro.nn.module import Module, ModuleList
from repro.nn.tensor import Tensor, concatenate
from repro.models.layers import GCNConv
from repro.models.sort_pool import SortPooling
from repro.utils.rng import RngLike, as_generator

__all__ = ["DGCNNBackbone", "VanillaDGCNN"]

# Layer factory signature: (in_dim, out_dim, rng) -> Module
ConvFactory = Callable[[int, int, np.random.Generator], Module]


class DGCNNBackbone(Module):
    """DGCNN with a pluggable graph-convolution layer.

    Parameters
    ----------
    in_dim: node-feature width.
    num_classes: output logits.
    conv_factory: builds each message-passing layer.
    hidden_dim: width of each hidden graph-conv layer (paper Table I
        options: 16/32/64/128).
    num_conv_layers: hidden layer count before the 1-channel sort layer.
    sort_k: SortPooling retained-node count (paper Table I: 5..150).
    conv1d_channels: widths of the two 1-D convolutions (DGCNN: 16, 32).
    dense_dim: classifier hidden width (DGCNN: 128).
    dropout: classifier dropout probability (DGCNN: 0.5).
    center_pool:
        Concatenate the embeddings of the two *target* nodes (always the
        first two nodes of every SEAL subgraph) onto the graph
        representation before the dense classifier. Applied identically
        to both models. SEAL-style link classifiers need the target
        nodes' states; with the paper's sample budgets (10³–10⁴ links)
        pure SortPooling eventually localizes them, but at this
        reproduction's reduced scale the extra readout makes training
        sample-efficient and stable (see DESIGN.md). Set False for the
        strict original DGCNN readout (ablated in the benchmarks).
    """

    def __init__(
        self,
        in_dim: int,
        num_classes: int,
        conv_factory: ConvFactory,
        *,
        hidden_dim: int = 32,
        num_conv_layers: int = 3,
        sort_k: int = 30,
        conv1d_channels: Sequence[int] = (16, 32),
        conv1d_kernel2: int = 5,
        dense_dim: int = 128,
        dropout: float = 0.5,
        center_pool: bool = True,
        rng: RngLike = None,
    ):
        super().__init__()
        if num_conv_layers < 1:
            raise ValueError("need at least one hidden conv layer")
        gen = as_generator(rng)
        dims: List[int] = [in_dim] + [hidden_dim] * num_conv_layers + [1]
        self.convs = ModuleList(
            [conv_factory(dims[i], dims[i + 1], gen) for i in range(len(dims) - 1)]
        )
        self.total_dim = sum(dims[1:])  # concatenated conv outputs
        self.sort_pool = SortPooling(sort_k)
        self.sort_k = sort_k

        c1, c2 = conv1d_channels
        self.conv1 = Conv1d(1, c1, kernel_size=self.total_dim, stride=self.total_dim, rng=gen)
        self.pool = MaxPool1d(2)
        # Guard: the second conv needs enough pooled length.
        pooled_len = self.pool.out_length(self.conv1.out_length(sort_k * self.total_dim))
        if pooled_len < conv1d_kernel2:
            conv1d_kernel2 = max(1, pooled_len)
        self.conv2 = Conv1d(c1, c2, kernel_size=conv1d_kernel2, stride=1, rng=gen)
        flat = c2 * self.conv2.out_length(pooled_len)

        self.center_pool = center_pool
        if center_pool:
            flat += 2 * self.total_dim  # target-node embeddings appended
        self.lin1 = Linear(flat, dense_dim, rng=gen)
        self.drop = Dropout(dropout, rng=gen)
        self.lin2 = Linear(dense_dim, num_classes, rng=gen)
        self.num_classes = num_classes

    @staticmethod
    def _batch_plans(batch: GraphBatch) -> Optional[PlanCache]:
        """The batch's plan cache, or None when plans are disabled."""
        return batch.plans if kernels.plans_enabled() else None

    def node_embeddings(self, batch: GraphBatch) -> Tensor:
        """Concatenated per-node outputs of every graph-conv layer."""
        x = Tensor(batch.node_features)
        plans = self._batch_plans(batch)
        outs: List[Tensor] = []
        for conv in self.convs:
            x = F.tanh(conv(x, batch.edge_index, batch.edge_attr, plans=plans))
            outs.append(x)
        return concatenate(outs, axis=1)

    def forward(self, batch: GraphBatch) -> Tensor:
        """Per-graph class logits ``(num_graphs, num_classes)``."""
        plans = self._batch_plans(batch)
        node_plan = plans.node() if plans is not None else None
        z = self.node_embeddings(batch)  # (N, total_dim)
        pooled = self.sort_pool(z, batch.batch, batch.num_graphs, plan=node_plan)
        b = batch.num_graphs
        seq = pooled.reshape(b, 1, self.sort_k * self.total_dim)
        h = F.relu(self.conv1(seq))
        h = self.pool(h)
        h = F.relu(self.conv2(h))
        h = h.reshape(b, h.shape[1] * h.shape[2])
        if self.center_pool:
            # SEAL places the target endpoints at local indices 0 and 1 of
            # every subgraph; their batch offsets are the graph starts.
            if node_plan is not None:
                starts = node_plan.indptr[:-1]
            else:
                counts = batch.nodes_per_graph()
                starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
            centers = gather(z, np.stack([starts, starts + 1], axis=1).ravel())
            h = concatenate([h, centers.reshape(b, 2 * self.total_dim)], axis=1)
        h = F.relu(self.lin1(h))
        h = self.drop(h)
        return self.lin2(h)


class VanillaDGCNN(DGCNNBackbone):
    """The baseline: DGCNN with GCN message passing (edge-attribute blind).

    This is the "vanilla DGCNN" column of the paper's Table III. Edge
    attributes present in the batch are ignored by every layer.
    """

    def __init__(
        self,
        in_dim: int,
        num_classes: int,
        *,
        hidden_dim: int = 32,
        num_conv_layers: int = 3,
        sort_k: int = 30,
        dropout: float = 0.5,
        center_pool: bool = True,
        rng: RngLike = None,
    ):
        def factory(i: int, o: int, gen: np.random.Generator) -> Module:
            return GCNConv(i, o, rng=gen)

        super().__init__(
            in_dim,
            num_classes,
            factory,
            hidden_dim=hidden_dim,
            num_conv_layers=num_conv_layers,
            sort_k=sort_k,
            dropout=dropout,
            center_pool=center_pool,
            rng=rng,
        )
