"""GNN layers and the two competing link classifiers.

``VanillaDGCNN`` — GCN message passing, blind to edge attributes.
``AMDGCNN``     — the paper's model: GAT message passing over edge attrs.
"""

from repro.models.am_dgcnn import AMDGCNN
from repro.models.dgcnn import DGCNNBackbone, VanillaDGCNN
from repro.models.gatv2 import GATv2Conv, GATv2DGCNN
from repro.models.gin import GINConv
from repro.models.layers import GATConv, GCNConv, add_self_loops
from repro.models.rgcn import RGCNConv, RGCNDGCNN
from repro.models.sage import SAGEConv
from repro.models.sort_pool import SortPooling, sort_pool
from repro.models.wlnm import WLNMClassifier, encode_subgraph, wl_order

__all__ = [
    "GCNConv",
    "GATConv",
    "SAGEConv",
    "GINConv",
    "RGCNConv",
    "add_self_loops",
    "SortPooling",
    "sort_pool",
    "DGCNNBackbone",
    "VanillaDGCNN",
    "AMDGCNN",
    "GATv2Conv",
    "GATv2DGCNN",
    "RGCNDGCNN",
    "WLNMClassifier",
    "wl_order",
    "encode_subgraph",
]
