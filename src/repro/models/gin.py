"""Graph Isomorphism Network convolution (Xu et al., ICLR'19).

The most expressive sum-aggregation message-passing layer in the 1-WL
class: ``x'_i = MLP((1 + ε) x_i + Σ_{j∈N(i)} x_j)``. Edge-attribute
blind like GCN/SAGE — included to round out the edge-blind side of the
extension spectrum (GIN's extra expressiveness over GCN still cannot
recover relation information it never sees).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.dense import Linear
from repro.nn.indexing import gather, segment_sum
from repro.nn.kernels import PlanCache
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, as_tensor
from repro.utils.rng import RngLike, as_generator

__all__ = ["GINConv"]


class GINConv(Module):
    """GIN layer with a 2-layer MLP transform and learnable ε."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        hidden_dim: Optional[int] = None,
        train_eps: bool = True,
        rng: RngLike = None,
    ):
        super().__init__()
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("feature dimensions must be positive")
        hidden_dim = hidden_dim or out_dim
        gen = as_generator(rng)
        self.lin1 = Linear(in_dim, hidden_dim, rng=gen)
        self.lin2 = Linear(hidden_dim, out_dim, rng=gen)
        if train_eps:
            self.eps: Optional[Parameter] = Parameter(np.zeros(1))
        else:
            self.register_parameter("eps", None)
            self.eps = None
        self.in_dim = in_dim
        self.out_dim = out_dim

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_attr: Optional[np.ndarray] = None,  # accepted but unused
        *,
        plans: Optional[PlanCache] = None,
    ) -> Tensor:
        x = as_tensor(x)
        n = x.shape[0]
        src, dst = edge_index
        src_plan = plans.src() if plans is not None else None
        dst_plan = plans.dst() if plans is not None else None
        agg = segment_sum(gather(x, src, plan=src_plan), dst, n, plan=dst_plan)
        if self.eps is not None:
            h = x * (self.eps + 1.0) + agg
        else:
            h = x + agg
        return self.lin2(F.relu(self.lin1(h)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GINConv({self.in_dim}, {self.out_dim})"
