"""GraphSAGE convolution (Hamilton et al., NeurIPS'17).

A third message-passing flavour for the GNN-agnostic SEAL framework:
``x'_i = W_self x_i + W_nbr · mean_{j∈N(i)} x_j``. Like GCN it ignores
edge attributes; it serves as an additional edge-blind baseline in the
extension benchmarks (the paper's framework is "GNN-agnostic", §II-B).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.indexing import gather, segment_mean
from repro.nn.kernels import PlanCache
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, as_tensor
from repro.utils.rng import RngLike, as_generator

__all__ = ["SAGEConv"]


class SAGEConv(Module):
    """Mean-aggregator GraphSAGE layer (edge-attribute blind)."""

    def __init__(self, in_dim: int, out_dim: int, bias: bool = True, rng: RngLike = None):
        super().__init__()
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("feature dimensions must be positive")
        self.in_dim = in_dim
        self.out_dim = out_dim
        gen = as_generator(rng)
        self.weight_self = Parameter(init.xavier_uniform((in_dim, out_dim), rng=gen))
        self.weight_nbr = Parameter(init.xavier_uniform((in_dim, out_dim), rng=gen))
        if bias:
            self.bias: Optional[Parameter] = Parameter(init.zeros((out_dim,)))
        else:
            self.register_parameter("bias", None)
            self.bias = None

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_attr: Optional[np.ndarray] = None,  # accepted but unused
        *,
        plans: Optional[PlanCache] = None,
    ) -> Tensor:
        x = as_tensor(x)
        n = x.shape[0]
        src, dst = edge_index
        src_plan = plans.src() if plans is not None else None
        dst_plan = plans.dst() if plans is not None else None
        nbr_mean = segment_mean(gather(x, src, plan=src_plan), dst, n, plan=dst_plan)
        out = x @ self.weight_self + nbr_mean @ self.weight_nbr
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SAGEConv({self.in_dim}, {self.out_dim})"
