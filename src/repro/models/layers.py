"""Graph convolution layers: GCNConv and GATConv (with edge attributes).

``GCNConv`` follows Kipf & Welling (ICLR'17): symmetric-normalized
propagation with self-loops. It is *edge-attribute blind* — the
shortcoming of vanilla DGCNN the paper targets.

``GATConv`` follows Veličković et al. (ICLR'18) with PyTorch Geometric's
``edge_dim`` extension: edge attributes are linearly projected and enter
the additive attention logits, so attention coefficients — and therefore
the aggregation — depend on the relation carried by each edge. This is
the mechanism that lets AM-DGCNN exploit link information (paper §II-A,
§III-C).

Both layers operate on a batched edge list (``repro.graph.GraphBatch``),
with all message passing expressed through ``gather`` / ``segment_sum`` /
``segment_softmax`` so the entire mini-batch is processed in a handful of
vectorized ops.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.dtype import FLOAT64, get_compute_dtype
from repro.nn.indexing import gather, segment_softmax, segment_sum
from repro.nn.kernels import PlanCache
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, as_tensor
from repro.utils.rng import RngLike, as_generator

__all__ = ["GCNConv", "GATConv", "add_self_loops"]


def add_self_loops(
    edge_index: np.ndarray,
    num_nodes: int,
    edge_attr: Optional[np.ndarray] = None,
    fill: float = 0.0,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Append one ``i→i`` arc per node; self-loop attributes are ``fill``.

    Returns the augmented ``(edge_index, edge_attr)`` pair. PyG fills
    self-loop edge attributes with a constant; zero (the default) means
    "no relation information" for the loop, which keeps the loop's
    attention contribution neutral.
    """
    loops = np.arange(num_nodes, dtype=np.int64)
    ei = np.concatenate([edge_index, np.stack([loops, loops])], axis=1)
    if edge_attr is None:
        return ei, None
    attr_dtype = edge_attr.dtype if edge_attr.dtype.kind == "f" else get_compute_dtype()
    loop_attr = np.full((num_nodes, edge_attr.shape[1]), fill, dtype=attr_dtype)
    return ei, np.concatenate([edge_attr, loop_attr], axis=0)


class GCNConv(Module):
    """Graph convolution ``X' = D̂^{-1/2} Â D̂^{-1/2} X W + b``.

    ``Â = A + I`` (self-loops added internally). Any ``edge_attr`` passed
    to ``forward`` is deliberately ignored — this blindness to link
    information is exactly what the paper's comparison isolates.
    """

    def __init__(self, in_dim: int, out_dim: int, bias: bool = True, rng: RngLike = None):
        super().__init__()
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("feature dimensions must be positive")
        self.in_dim = in_dim
        self.out_dim = out_dim
        gen = as_generator(rng)
        self.weight = Parameter(init.xavier_uniform((in_dim, out_dim), rng=gen))
        if bias:
            self.bias: Optional[Parameter] = Parameter(init.zeros((out_dim,)))
        else:
            self.register_parameter("bias", None)
            self.bias = None

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_attr: Optional[np.ndarray] = None,  # accepted but unused
        *,
        plans: Optional[PlanCache] = None,
    ) -> Tensor:
        x = as_tensor(x)
        n = x.shape[0]
        if plans is not None:
            # Loop-augmented topology, degrees and normalization are pure
            # functions of the batch — reuse them instead of rebuilding.
            ei = plans.loop_edge_index()
            src, dst = ei
            coeff = plans.gcn_coeff()
            src_plan = plans.src(loops=True)
            dst_plan = plans.dst(loops=True)
        else:
            ei, _ = add_self_loops(edge_index, n)
            src, dst = ei
            deg = np.bincount(dst, minlength=n).astype(FLOAT64)
            inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1.0))
            # Normalization computed in float64, then narrowed to the
            # compute dtype once (matches the PlanCache.gcn_coeff cache).
            coeff = (inv_sqrt[src] * inv_sqrt[dst]).astype(get_compute_dtype(), copy=False)
            src_plan = dst_plan = None

        h = x @ self.weight  # (N, out)
        messages = gather(h, src, plan=src_plan) * Tensor(coeff[:, None])
        out = segment_sum(messages, dst, n, plan=dst_plan)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GCNConv({self.in_dim}, {self.out_dim})"


class GATConv(Module):
    """Multi-head graph attention with optional edge attributes.

    For arc ``j→i`` with heads ``h``:

    .. math::
        e_{ij}^h = \\mathrm{LeakyReLU}\\big(a_s^h \\cdot W^h x_j
                   + a_d^h \\cdot W^h x_i + a_e^h \\cdot W_e^h e_{ij}\\big)

    ``α = segment_softmax(e)`` over the incoming arcs of each destination,
    and ``x'_i = \\Vert_h Σ_j α_{ij}^h m_{ij}^h`` (concatenated heads), plus
    bias. When ``edge_dim == 0`` the edge term vanishes and the layer is a
    standard GAT.

    With ``edge_in_message=True`` (default) the per-arc message is
    ``m_{ij} = W x_j + W_e e_{ij}`` rather than ``W x_j`` alone. This is
    load-bearing: attention-only edge usage is *provably blind* to edge
    attributes whenever neighboring node features are identical — the
    softmax normalizes to 1, so reweighting identical messages changes
    nothing. On a dataset like WordNet-18, where nodes carry no features
    beyond DRNL labels, an attention-only GAT would collapse to the GCN
    baseline; projecting edge attributes into the message restores the
    paper's "incorporating link information into node transformations"
    (§II-A). Set ``edge_in_message=False`` to recover PyG's attention-only
    ``GATConv(edge_dim=...)`` semantics (an ablation in the benchmarks).

    Parameters
    ----------
    in_dim / out_dim: per-layer widths; ``out_dim`` must divide by ``heads``
        (each head produces ``out_dim // heads`` channels).
    heads: number of attention heads.
    edge_dim: width of edge-attribute vectors (0 disables the edge path).
    edge_in_message: add the projected edge attribute to message contents.
    negative_slope: LeakyReLU slope in the attention logits (paper: 0.2).
    add_loops: include self-loops (with zero edge attributes).
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        heads: int = 1,
        edge_dim: int = 0,
        edge_in_message: bool = True,
        negative_slope: float = 0.2,
        bias: bool = True,
        add_loops: bool = True,
        rng: RngLike = None,
    ):
        super().__init__()
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("feature dimensions must be positive")
        if heads <= 0 or out_dim % heads != 0:
            raise ValueError("out_dim must be a positive multiple of heads")
        if edge_dim < 0:
            raise ValueError("edge_dim must be non-negative")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.heads = heads
        self.channels = out_dim // heads
        self.edge_dim = edge_dim
        self.edge_in_message = edge_in_message
        self.negative_slope = negative_slope
        self.add_loops = add_loops

        gen = as_generator(rng)
        self.weight = Parameter(init.xavier_uniform((in_dim, out_dim), rng=gen))
        self.att_src = Parameter(init.xavier_uniform((1, heads, self.channels), rng=gen))
        self.att_dst = Parameter(init.xavier_uniform((1, heads, self.channels), rng=gen))
        if edge_dim > 0:
            self.edge_weight: Optional[Parameter] = Parameter(
                init.xavier_uniform((edge_dim, out_dim), rng=gen)
            )
            self.att_edge: Optional[Parameter] = Parameter(
                init.xavier_uniform((1, heads, self.channels), rng=gen)
            )
        else:
            self.register_parameter("edge_weight", None)
            self.register_parameter("att_edge", None)
            self.edge_weight = None
            self.att_edge = None
        if bias:
            self.bias: Optional[Parameter] = Parameter(init.zeros((out_dim,)))
        else:
            self.register_parameter("bias", None)
            self.bias = None

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_attr: Optional[np.ndarray] = None,
        *,
        plans: Optional[PlanCache] = None,
    ) -> Tensor:
        x = as_tensor(x)
        n = x.shape[0]
        if self.edge_dim > 0:
            if edge_attr is None:
                edge_attr = np.zeros(
                    (edge_index.shape[1], self.edge_dim), dtype=get_compute_dtype()
                )
            elif edge_attr.shape[1] != self.edge_dim:
                raise ValueError(
                    f"edge_attr width {edge_attr.shape[1]} != edge_dim {self.edge_dim}"
                )
        if self.add_loops:
            if plans is not None:
                edge_index = plans.loop_edge_index()
                edge_attr = plans.loop_edge_attr(edge_attr)
            else:
                edge_index, edge_attr = add_self_loops(edge_index, n, edge_attr)
        if plans is not None:
            src_plan = plans.src(loops=self.add_loops)
            dst_plan = plans.dst(loops=self.add_loops)
        else:
            src_plan = dst_plan = None
        src, dst = edge_index
        e = edge_index.shape[1]

        h = (x @ self.weight).reshape(n, self.heads, self.channels)  # (N, H, C)
        # Node contributions to the logits, precomputed per node then
        # gathered per arc (cheaper than per-arc projection).
        alpha_src = (h * self.att_src).sum(axis=2)  # (N, H)
        alpha_dst = (h * self.att_dst).sum(axis=2)  # (N, H)
        logits = gather(alpha_src, src, plan=src_plan) + gather(
            alpha_dst, dst, plan=dst_plan
        )  # (E, H)
        he = None
        if self.edge_dim > 0:
            he = (Tensor(edge_attr) @ self.edge_weight).reshape(e, self.heads, self.channels)
            logits = logits + (he * self.att_edge).sum(axis=2)
        logits = F.leaky_relu(logits, self.negative_slope)
        alpha = segment_softmax(logits, dst, n, plan=dst_plan)  # (E, H)

        content = gather(h, src, plan=src_plan)  # (E, H, C)
        if he is not None and self.edge_in_message:
            content = content + he
        messages = content * alpha.reshape(e, self.heads, 1)  # (E, H, C)
        out = segment_sum(messages, dst, n, plan=dst_plan).reshape(n, self.out_dim)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GATConv({self.in_dim}, {self.out_dim}, heads={self.heads}, "
            f"edge_dim={self.edge_dim})"
        )
