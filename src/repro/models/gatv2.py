"""GATv2 convolution (Brody, Alon & Yahav, ICLR'22) with edge attributes.

A natural extension beyond the paper: GATv2 fixes GAT's *static
attention* limitation by applying the attention vector after the
nonlinearity,

.. math::
    e_{ij}^h = a_h^\\top \\,\\mathrm{LeakyReLU}\\big(W_s^h x_j + W_d^h x_i
               + W_e^h e_{ij}\\big),

so the ranking of neighbors can depend on the destination node (dynamic
attention). Like :class:`~repro.models.layers.GATConv` it supports edge
attributes in both the logits and (optionally) the message contents, and
drops into the shared DGCNN backbone via :class:`GATv2DGCNN`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.dgcnn import DGCNNBackbone
from repro.nn import functional as F
from repro.nn import init
from repro.nn.indexing import gather, segment_softmax, segment_sum
from repro.nn.kernels import PlanCache
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, as_tensor
from repro.models.layers import add_self_loops
from repro.utils.rng import RngLike, as_generator

__all__ = ["GATv2Conv", "GATv2DGCNN"]


class GATv2Conv(Module):
    """Dynamic-attention graph convolution with optional edge attributes."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        heads: int = 1,
        edge_dim: int = 0,
        edge_in_message: bool = True,
        negative_slope: float = 0.2,
        bias: bool = True,
        add_loops: bool = True,
        rng: RngLike = None,
    ):
        super().__init__()
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("feature dimensions must be positive")
        if heads <= 0 or out_dim % heads != 0:
            raise ValueError("out_dim must be a positive multiple of heads")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.heads = heads
        self.channels = out_dim // heads
        self.edge_dim = edge_dim
        self.edge_in_message = edge_in_message
        self.negative_slope = negative_slope
        self.add_loops = add_loops

        gen = as_generator(rng)
        self.weight_src = Parameter(init.xavier_uniform((in_dim, out_dim), rng=gen))
        self.weight_dst = Parameter(init.xavier_uniform((in_dim, out_dim), rng=gen))
        self.att = Parameter(init.xavier_uniform((1, heads, self.channels), rng=gen))
        if edge_dim > 0:
            self.edge_weight: Optional[Parameter] = Parameter(
                init.xavier_uniform((edge_dim, out_dim), rng=gen)
            )
        else:
            self.register_parameter("edge_weight", None)
            self.edge_weight = None
        if bias:
            self.bias: Optional[Parameter] = Parameter(init.zeros((out_dim,)))
        else:
            self.register_parameter("bias", None)
            self.bias = None

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_attr: Optional[np.ndarray] = None,
        *,
        plans: Optional[PlanCache] = None,
    ) -> Tensor:
        x = as_tensor(x)
        n = x.shape[0]
        if self.edge_dim > 0 and edge_attr is None:
            edge_attr = np.zeros((edge_index.shape[1], self.edge_dim))
        if self.edge_dim > 0 and edge_attr.shape[1] != self.edge_dim:
            raise ValueError(
                f"edge_attr width {edge_attr.shape[1]} != edge_dim {self.edge_dim}"
            )
        if self.add_loops:
            if plans is not None:
                edge_index = plans.loop_edge_index()
                edge_attr = plans.loop_edge_attr(edge_attr)
            else:
                edge_index, edge_attr = add_self_loops(edge_index, n, edge_attr)
        if plans is not None:
            src_plan = plans.src(loops=self.add_loops)
            dst_plan = plans.dst(loops=self.add_loops)
        else:
            src_plan = dst_plan = None
        src, dst = edge_index
        e = edge_index.shape[1]

        h_src = (x @ self.weight_src).reshape(n, self.heads, self.channels)
        h_dst = (x @ self.weight_dst).reshape(n, self.heads, self.channels)
        pre = gather(h_src, src, plan=src_plan) + gather(h_dst, dst, plan=dst_plan)  # (E, H, C)
        he = None
        if self.edge_dim > 0:
            he = (Tensor(edge_attr) @ self.edge_weight).reshape(e, self.heads, self.channels)
            pre = pre + he
        # v2: nonlinearity BEFORE the attention dot product.
        logits = (F.leaky_relu(pre, self.negative_slope) * self.att).sum(axis=2)
        alpha = segment_softmax(logits, dst, n, plan=dst_plan)  # (E, H)

        content = gather(h_src, src, plan=src_plan)
        if he is not None and self.edge_in_message:
            content = content + he
        out = segment_sum(content * alpha.reshape(e, self.heads, 1), dst, n, plan=dst_plan)
        out = out.reshape(n, self.out_dim)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GATv2Conv({self.in_dim}, {self.out_dim}, heads={self.heads}, "
            f"edge_dim={self.edge_dim})"
        )


class GATv2DGCNN(DGCNNBackbone):
    """AM-DGCNN variant with GATv2 message passing (dynamic attention)."""

    def __init__(
        self,
        in_dim: int,
        num_classes: int,
        *,
        edge_dim: int = 0,
        heads: int = 2,
        edge_in_message: bool = True,
        hidden_dim: int = 32,
        num_conv_layers: int = 3,
        sort_k: int = 30,
        dropout: float = 0.5,
        center_pool: bool = True,
        rng: RngLike = None,
    ):
        self.edge_dim = edge_dim
        self.heads = heads

        def factory(i: int, o: int, gen: np.random.Generator) -> Module:
            h = heads if o % heads == 0 and o >= heads else 1
            return GATv2Conv(
                i, o, heads=h, edge_dim=edge_dim,
                edge_in_message=edge_in_message, rng=gen,
            )

        super().__init__(
            in_dim,
            num_classes,
            factory,
            hidden_dim=hidden_dim,
            num_conv_layers=num_conv_layers,
            sort_k=sort_k,
            dropout=dropout,
            center_pool=center_pool,
            rng=rng,
        )
