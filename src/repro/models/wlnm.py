"""Weisfeiler-Lehman Neural Machine (Zhang & Chen, KDD'17) — paper §VI-B.

The predecessor of SEAL that the paper's related-work section critiques:
extract the enclosing subgraph, order its vertices with a
Weisfeiler-Lehman-style color refinement (palette-WL), truncate/pad the
adjacency matrix to a fixed size, and feed the flattened upper triangle
to a fully connected network. Its documented weaknesses — fixed-size
truncation losing structure, no node/edge features — are exactly what
the benchmarks demonstrate against SEAL+AM-DGCNN.

Implementation notes
--------------------
* Initial colors follow the original recipe: nodes are seeded by their
  mean distance to the two target links' endpoints (targets first).
* Color refinement is the classic 1-WL hash on (own color, sorted
  multiset of neighbor colors), iterated to stability, with ties broken
  by initial order. The final total order truncates the subgraph to the
  ``k`` highest-priority vertices.
* The encoding vector is the upper triangle of the reordered k×k
  adjacency, with the target-link entry (1,2) removed (it is the label
  being predicted).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.structure import Graph
from repro.graph.subgraph import EnclosingSubgraph, extract_enclosing_subgraph
from repro.nn.dense import MLP
from repro.nn.losses import cross_entropy
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.seal.dataset import LinkTask
from repro.utils.rng import RngLike, as_generator, derive

__all__ = ["wl_order", "encode_subgraph", "WLNMClassifier"]


def wl_order(sub: EnclosingSubgraph, max_iters: int = 20) -> np.ndarray:
    """Palette-WL vertex ordering of an enclosing subgraph.

    Returns node indices sorted by priority (targets first, then by
    refined WL color, ties by initial distance seed then node id).
    """
    g = sub.graph
    n = g.num_nodes
    # Seed colors: average distance to the two targets; unreachable gets
    # a large sentinel so it sorts last.
    da = np.where(sub.dist_a >= 0, sub.dist_a, n + 1)
    db = np.where(sub.dist_b >= 0, sub.dist_b, n + 1)
    seed = da + db
    seed[sub.src] = -1  # targets always first
    seed[sub.dst] = -1

    # Map seeds to dense initial colors (ascending seed = high priority).
    _, colors = np.unique(seed, return_inverse=True)

    indptr, indices, _ = g.csr()
    for _ in range(max_iters):
        # Order-preserving refinement: new colors are the lexicographic
        # ranks of (own color, sorted neighbor colors), so the initial
        # distance-based priority survives refinement (palette-WL).
        signatures = []
        for v in range(n):
            nbr_colors = np.sort(colors[indices[indptr[v] : indptr[v + 1]]])
            signatures.append((int(colors[v]), tuple(nbr_colors.tolist())))
        ranking = {sig: i for i, sig in enumerate(sorted(set(signatures)))}
        new_colors = np.array([ranking[s] for s in signatures], dtype=np.int64)
        if len(np.unique(new_colors)) == len(np.unique(colors)):
            colors = new_colors
            break
        colors = new_colors

    order = np.lexsort((np.arange(n), colors))
    # Force the two targets to the very front regardless of refinement.
    order = np.concatenate(
        [[sub.src, sub.dst], [v for v in order if v not in (sub.src, sub.dst)]]
    ).astype(np.int64)
    return order


def encode_subgraph(sub: EnclosingSubgraph, k: int) -> np.ndarray:
    """Fixed-size adjacency encoding: upper triangle of the reordered k×k
    adjacency with the target-link slot removed. Length ``k(k-1)/2 - 1``."""
    if k < 2:
        raise ValueError("k must be >= 2")
    order = wl_order(sub)[:k]
    g = sub.graph
    lookup = np.full(g.num_nodes, -1, dtype=np.int64)
    lookup[order] = np.arange(len(order))
    adj = np.zeros((k, k))
    src, dst = g.edge_index
    s, d = lookup[src], lookup[dst]
    keep = (s >= 0) & (d >= 0)
    adj[s[keep], d[keep]] = 1.0
    adj = np.maximum(adj, adj.T)
    iu = np.triu_indices(k, 1)
    vec = adj[iu]
    # Drop the (0, 1) slot — the target link itself.
    return np.delete(vec, 0)


class WLNMClassifier:
    """WLNM link classifier over a :class:`~repro.seal.LinkTask`.

    Parameters
    ----------
    k: fixed vertex budget of the encoded subgraph (original paper: 10).
    hidden: MLP hidden widths.
    """

    def __init__(
        self,
        num_classes: int,
        k: int = 10,
        hidden: Tuple[int, ...] = (64, 32),
        lr: float = 1e-3,
        epochs: int = 60,
        batch_size: int = 32,
        rng: RngLike = 0,
    ):
        if num_classes < 2:
            raise ValueError("need at least two classes")
        self.num_classes = num_classes
        self.k = k
        self.hidden = hidden
        self.lr = lr
        self.epochs = epochs
        self.batch_size = batch_size
        self.rng = rng
        self.mlp: Optional[MLP] = None

    @property
    def input_dim(self) -> int:
        return self.k * (self.k - 1) // 2 - 1

    def _encode_links(self, task: LinkTask, indices: np.ndarray, rng) -> np.ndarray:
        out = np.zeros((len(indices), self.input_dim))
        for row, i in enumerate(indices):
            u, v = task.pairs[int(i)]
            sub = extract_enclosing_subgraph(
                task.graph,
                int(u),
                int(v),
                k=task.num_hops,
                mode=task.subgraph_mode,
                max_nodes=max(task.max_subgraph_nodes or 100, self.k),
                rng=rng,
            )
            out[row] = encode_subgraph(sub, self.k)
        return out

    def fit(self, task: LinkTask, train_indices: np.ndarray) -> "WLNMClassifier":
        """Encode and train the dense network; returns self."""
        gen = derive(self.rng, "wlnm")
        train_indices = np.asarray(train_indices, dtype=np.int64)
        x = self._encode_links(task, train_indices, gen)
        y = task.labels[train_indices]
        self.mlp = MLP([self.input_dim, *self.hidden, self.num_classes], rng=gen)
        opt = Adam(self.mlp.parameters(), lr=self.lr)
        order_rng = as_generator(derive(self.rng, "wlnm-shuffle"))
        for _ in range(self.epochs):
            perm = order_rng.permutation(len(x))
            for start in range(0, len(perm), self.batch_size):
                sel = perm[start : start + self.batch_size]
                opt.zero_grad()
                loss = cross_entropy(self.mlp(Tensor(x[sel])), y[sel])
                loss.backward()
                opt.step()
        return self

    def predict_proba(self, task: LinkTask, indices: np.ndarray) -> np.ndarray:
        """Class probabilities for the given link indices."""
        if self.mlp is None:
            raise RuntimeError("classifier is not fitted")
        gen = derive(self.rng, "wlnm")
        x = self._encode_links(task, np.asarray(indices, dtype=np.int64), gen)
        with no_grad():
            logits = self.mlp(Tensor(x)).data
        logits = logits - logits.max(axis=1, keepdims=True)
        expd = np.exp(logits)
        return expd / expd.sum(axis=1, keepdims=True)

    def predict(self, task: LinkTask, indices: np.ndarray) -> np.ndarray:
        """Argmax class per link."""
        return self.predict_proba(task, indices).argmax(axis=1)
