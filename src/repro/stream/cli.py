"""``python -m repro stream`` — prequential streaming over a dataset.

Loads one of the bundled knowledge graphs, optionally pre-trains the
model on the dataset's labeled links, then generates a seeded temporal
event stream and drives the model prequentially (test-then-train) over
it with :func:`repro.stream.run_prequential`. Prints a JSON report:
per-window accuracy, the offline-style aggregate metrics over every
streamed link, drift signals, and the streaming-graph statistics
(snapshots, live edges, tombstones, compactions).

Example::

    python -m repro stream --dataset primekg --scale 0.15 \
        --events 200 --window 25 --pretrain-epochs 1 --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

import numpy as np

from repro.utils.rng import derive

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-stream",
        description="prequential streaming evaluation over a bundled dataset",
    )
    p.add_argument("--dataset", default="primekg", help="bundled dataset name")
    p.add_argument("--scale", type=float, default=0.15, help="graph size factor")
    p.add_argument(
        "--targets", type=int, default=60, help="labeled links for pre-training"
    )
    p.add_argument("--seed", type=int, default=0, help="master seed")
    p.add_argument("--events", type=int, default=150, help="stream length")
    p.add_argument(
        "--add-fraction",
        type=float,
        default=0.85,
        help="fraction of add (vs invalidate) events",
    )
    p.add_argument(
        "--class-drift",
        type=float,
        default=1.5,
        help="label-distribution drift strength over the stream",
    )
    p.add_argument("--window", type=int, default=25, help="events per window")
    p.add_argument("--eval-batch-size", type=int, default=8)
    p.add_argument(
        "--pretrain-epochs", type=int, default=1, help="epochs on the base task"
    )
    p.add_argument(
        "--train-epochs", type=int, default=1, help="epochs per stream window"
    )
    p.add_argument(
        "--train-window", type=int, default=100, help="sliding training buffer"
    )
    p.add_argument("--batch-size", type=int, default=8)
    p.add_argument("--lr", type=float, default=1e-3)
    p.add_argument(
        "--compact-every", type=int, default=8, help="snapshots between compactions"
    )
    p.add_argument(
        "--snapshot-dir",
        default=None,
        help="persist every snapshot (mmap-openable) under this directory",
    )
    p.add_argument("--json", dest="json_path", default=None, help="write report here")
    return p


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from repro import obs
    from repro.datasets import load_dataset
    from repro.models import AMDGCNN
    from repro.seal import SEALDataset, TrainConfig, train
    from repro.stream import (
        StreamConfig,
        StreamingGraph,
        generate_events,
        run_prequential,
    )

    t_start = time.perf_counter()
    obs.enable()
    task = load_dataset(
        args.dataset, scale=args.scale, rng=args.seed, num_targets=args.targets
    )
    model = AMDGCNN(
        task.feature_config.width,
        task.num_classes,
        edge_dim=task.edge_attr_dim,
        rng=derive(args.seed, "stream-init"),
    )
    pretrain_s = 0.0
    if args.pretrain_epochs > 0 and task.num_links:
        ds = SEALDataset(task, rng=args.seed)
        t0 = time.perf_counter()
        train(
            model,
            ds,
            np.arange(task.num_links),
            TrainConfig(epochs=args.pretrain_epochs, batch_size=args.batch_size),
            rng=derive(args.seed, "stream-pretrain"),
            verbose=False,
        )
        pretrain_s = time.perf_counter() - t0

    events = generate_events(
        task.graph,
        args.events,
        rng=derive(args.seed, "stream-events"),
        add_fraction=args.add_fraction,
        num_classes=task.num_classes,
        class_drift=args.class_drift,
    )
    stream = StreamingGraph(
        task.graph,
        compact_every=args.compact_every,
        snapshot_dir=args.snapshot_dir,
    )
    config = StreamConfig(
        window_size=args.window,
        eval_batch_size=args.eval_batch_size,
        train_epochs=args.train_epochs,
        train_window=args.train_window,
        batch_size=args.batch_size,
        lr=args.lr,
    )
    result = run_prequential(
        model,
        stream,
        task,
        events,
        config,
        rng=derive(args.seed, "stream-run"),
        extraction_rng=args.seed,
    )

    report = {
        "workload": {
            "dataset": args.dataset,
            "scale": args.scale,
            "seed": args.seed,
            "events": len(events),
            "adds": events.num_added,
            "invalidations": events.num_invalidated,
            "window_size": args.window,
            "pretrain_epochs": args.pretrain_epochs,
        },
        "prequential": result.summary(),
        "windows": [
            {
                "window": w.window,
                "version": w.version,
                "events": w.events,
                "test_links": w.test_links,
                "accuracy": None if np.isnan(w.accuracy) else w.accuracy,
                "trained_links": w.trained_links,
            }
            for w in result.windows
        ],
        "stream_graph": stream.stats(),
        "timing": {
            "pretrain_s": pretrain_s,
            "total_s": time.perf_counter() - t_start,
        },
    }
    text = json.dumps(report, indent=2, default=float)
    print(text)
    if args.json_path:
        with open(args.json_path, "w") as fh:
            fh.write(text + "\n")
        print(f"report written to {args.json_path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
