"""Distribution-shift metrics for temporal streams.

:class:`DriftTracker` watches the stream one window at a time and
reports four complementary signals, each exported as a ``repro.obs``
gauge so the profile CLI and long-running services can scrape them:

- **label drift** (``stream.drift.label_tv``): total-variation distance
  between consecutive windows' link-label histograms;
- **degree drift** (``stream.drift.degree_tv``): total-variation
  distance between log2-bucketed degree distributions of consecutive
  snapshots;
- **attribute drift** (``stream.drift.attr_shift``): L2 distance
  between consecutive windows' mean edge-attribute vectors;
- **accuracy decay** (``stream.drift.accuracy_decay``): long-horizon
  minus short-horizon EWMA of prequential accuracy — positive when
  recent windows score below the long-run average, i.e. the model is
  falling behind the stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro import obs
from repro.graph.structure import Graph
from repro.nn.dtype import FLOAT64

__all__ = ["DriftReport", "DriftTracker"]

#: Degree histogram buckets: log2(deg + 1) clipped into this many bins.
_DEGREE_BUCKETS = 24


def _tv(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance between two histograms (normalized)."""
    p = p / max(p.sum(), 1e-12)
    q = q / max(q.sum(), 1e-12)
    return float(0.5 * np.abs(p - q).sum())


@dataclass(frozen=True)
class DriftReport:
    """Per-window drift signals (NaN where a signal has no data yet)."""

    window: int
    label_tv: float
    degree_tv: float
    attr_shift: float
    accuracy: float
    accuracy_short: float
    accuracy_long: float

    @property
    def accuracy_decay(self) -> float:
        """Long-EWMA minus short-EWMA accuracy (positive = decaying)."""
        return self.accuracy_long - self.accuracy_short

    def summary(self) -> dict:
        return {
            "window": self.window,
            "label_tv": self.label_tv,
            "degree_tv": self.degree_tv,
            "attr_shift": self.attr_shift,
            "accuracy": self.accuracy,
            "accuracy_decay": self.accuracy_decay,
        }


class DriftTracker:
    """Accumulate drift signals across prequential windows.

    ``short_alpha``/``long_alpha`` are the EWMA smoothing factors for
    the accuracy-decay signal (higher = more reactive). All comparisons
    are against the *previous* window/snapshot, so the tracker is O(1)
    in stream length.
    """

    def __init__(self, *, short_alpha: float = 0.5, long_alpha: float = 0.05):
        if not (0 < short_alpha <= 1 and 0 < long_alpha <= 1):
            raise ValueError("EWMA alphas must be in (0, 1]")
        self.short_alpha = float(short_alpha)
        self.long_alpha = float(long_alpha)
        self._prev_label_hist: Optional[np.ndarray] = None
        self._prev_degree_hist: Optional[np.ndarray] = None
        self._prev_attr_mean: Optional[np.ndarray] = None
        self._acc_short = float("nan")
        self._acc_long = float("nan")
        self.reports: List[DriftReport] = []

    def update(
        self,
        *,
        labels: Optional[np.ndarray] = None,
        num_classes: int = 0,
        graph: Optional[Graph] = None,
        edge_attr: Optional[np.ndarray] = None,
        accuracy: Optional[float] = None,
    ) -> DriftReport:
        """Fold one window's observations in and return its report."""
        label_tv = float("nan")
        if labels is not None and num_classes > 0:
            hist = np.bincount(
                np.asarray(labels, dtype=np.int64), minlength=num_classes
            ).astype(FLOAT64)
            if self._prev_label_hist is not None:
                label_tv = _tv(self._prev_label_hist, hist)
            self._prev_label_hist = hist

        degree_tv = float("nan")
        if graph is not None:
            deg = np.diff(graph.csr()[0])
            buckets = np.clip(
                np.log2(deg + 1.0).astype(np.int64), 0, _DEGREE_BUCKETS - 1
            )
            hist = np.bincount(buckets, minlength=_DEGREE_BUCKETS).astype(FLOAT64)
            if self._prev_degree_hist is not None:
                degree_tv = _tv(self._prev_degree_hist, hist)
            self._prev_degree_hist = hist

        attr_shift = float("nan")
        if edge_attr is not None and len(edge_attr):
            mean = np.asarray(edge_attr, dtype=FLOAT64).mean(axis=0)
            if self._prev_attr_mean is not None:
                attr_shift = float(np.linalg.norm(mean - self._prev_attr_mean))
            self._prev_attr_mean = mean

        acc = float("nan") if accuracy is None else float(accuracy)
        if accuracy is not None:
            if np.isnan(self._acc_short):
                self._acc_short = self._acc_long = acc
            else:
                self._acc_short += self.short_alpha * (acc - self._acc_short)
                self._acc_long += self.long_alpha * (acc - self._acc_long)

        report = DriftReport(
            window=len(self.reports),
            label_tv=label_tv,
            degree_tv=degree_tv,
            attr_shift=attr_shift,
            accuracy=acc,
            accuracy_short=self._acc_short,
            accuracy_long=self._acc_long,
        )
        self.reports.append(report)
        for name, value in (
            ("stream.drift.label_tv", label_tv),
            ("stream.drift.degree_tv", degree_tv),
            ("stream.drift.attr_shift", attr_shift),
            ("stream.drift.accuracy_decay", report.accuracy_decay),
        ):
            if not np.isnan(value):
                obs.gauge(name, value)
        if accuracy is not None:
            obs.observe("stream.prequential.accuracy", acc)
        return report

    def summary(self) -> dict:
        """Aggregate view over every window seen so far."""

        def _agg(values: List[float]) -> dict:
            vals = [v for v in values if not np.isnan(v)]
            if not vals:
                return {"mean": float("nan"), "max": float("nan")}
            return {"mean": float(np.mean(vals)), "max": float(np.max(vals))}

        return {
            "windows": len(self.reports),
            "label_tv": _agg([r.label_tv for r in self.reports]),
            "degree_tv": _agg([r.degree_tv for r in self.reports]),
            "attr_shift": _agg([r.attr_shift for r in self.reports]),
            "accuracy_short_ewma": self._acc_short,
            "accuracy_long_ewma": self._acc_long,
            "accuracy_decay": self._acc_long - self._acc_short,
        }
