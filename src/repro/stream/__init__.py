"""Streaming temporal knowledge graphs (ROADMAP item: temporal KGs).

The static pipeline — extraction, the plan cache, ``repro.serve`` —
assumes a frozen CSR. This package supplies the temporal regime around
it without giving that assumption up *per snapshot*:

- :mod:`repro.stream.events` — a seeded, GDELT-style temporal event
  generator (timestamped add-edge / invalidate-edge events carrying
  edge types, edge attributes and link labels).
- :mod:`repro.stream.snapshot` — :class:`StreamingGraph`, an
  incremental graph layer that applies events by append + tombstone and
  emits **epoch-versioned CSR snapshots**: each snapshot is an ordinary
  frozen :class:`repro.graph.Graph` (mmap-saveable through the
  ``repro.store`` format) built without re-sorting the arc table, plus
  a :class:`GraphDelta` naming exactly what changed since the previous
  snapshot.
- :mod:`repro.stream.prequential` — sliding-window training with
  prequential (test-then-train) evaluation driving the existing seal
  trainer/evaluator; a zero-mutation stream reproduces the offline
  evaluator bit for bit.
- :mod:`repro.stream.drift` — label/degree/attribute distribution
  shift and prequential-accuracy decay, exported through ``repro.obs``.

The :class:`GraphDelta` emitted with each snapshot is what
``repro.serve`` consumes for delta-aware cache invalidation
(:meth:`repro.serve.LinkScorer.invalidate`): only pairs whose k-hop
neighborhood intersects the delta's touched nodes are retired.
"""

from repro.stream.drift import DriftReport, DriftTracker
from repro.stream.events import (
    ADD_EDGE,
    INVALIDATE_EDGE,
    EventBatch,
    events_from_links,
    generate_events,
)
from repro.stream.prequential import (
    PrequentialResult,
    StreamConfig,
    WindowRecord,
    run_prequential,
)
from repro.stream.snapshot import GraphDelta, Snapshot, StreamingGraph

__all__ = [
    "ADD_EDGE",
    "INVALIDATE_EDGE",
    "DriftReport",
    "DriftTracker",
    "EventBatch",
    "GraphDelta",
    "PrequentialResult",
    "Snapshot",
    "StreamConfig",
    "StreamingGraph",
    "WindowRecord",
    "events_from_links",
    "generate_events",
    "run_prequential",
]
