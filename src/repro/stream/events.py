"""Seeded temporal event streams over a knowledge graph.

Events follow a GDELT-style schema: each row is a timestamped statement
about one (head, tail) pair — either a new typed, attributed edge
appearing (``ADD_EDGE``) or a previously published edge being retracted
(``INVALIDATE_EDGE``). Streams are columnar (:class:`EventBatch`), keep
their rows in time order, and are fully determined by the seed, so every
consumer (snapshotting, prequential evaluation, benchmarks) replays the
identical history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.graph.structure import Graph
from repro.nn.dtype import FLOAT64
from repro.utils.rng import RngLike, as_generator

__all__ = [
    "ADD_EDGE",
    "INVALIDATE_EDGE",
    "EventBatch",
    "events_from_links",
    "generate_events",
]

#: Event kinds. An ``ADD_EDGE`` publishes a new undirected edge with a
#: type, attributes and a link label; an ``INVALIDATE_EDGE`` retracts a
#: previously live edge (its type/attr columns echo the retracted edge).
ADD_EDGE = 0
INVALIDATE_EDGE = 1


@dataclass(frozen=True)
class EventBatch:
    """A time-ordered columnar slice of a temporal event stream.

    Attributes
    ----------
    times: ``(M,)`` float64 event timestamps, non-decreasing.
    kinds: ``(M,)`` int8, :data:`ADD_EDGE` or :data:`INVALIDATE_EDGE`.
    pairs: ``(M, 2)`` int64 undirected (head, tail) node pairs.
    edge_type: ``(M,)`` int64 relation type of the published/retracted
        edge.
    labels: ``(M,)`` int64 link-classification label of each add event
        (mirrors ``edge_type`` for generated streams; invalidations echo
        the retracted edge's type).
    edge_attr: optional ``(M, D)`` float edge attributes for add events.
    """

    times: np.ndarray
    kinds: np.ndarray
    pairs: np.ndarray
    edge_type: np.ndarray
    labels: np.ndarray
    edge_attr: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        m = len(self.times)
        if self.kinds.shape != (m,) or self.edge_type.shape != (m,):
            raise ValueError("event columns disagree on length")
        if self.labels.shape != (m,):
            raise ValueError("labels must be one per event")
        if self.pairs.shape != (m, 2):
            raise ValueError(f"pairs must be (M, 2), got {self.pairs.shape}")
        if self.edge_attr is not None and self.edge_attr.shape[0] != m:
            raise ValueError("edge_attr must have one row per event")
        if m > 1 and np.any(np.diff(self.times) < 0):
            raise ValueError("event times must be non-decreasing")

    def __len__(self) -> int:
        return len(self.times)

    @property
    def added_mask(self) -> np.ndarray:
        return self.kinds == ADD_EDGE

    @property
    def num_added(self) -> int:
        return int(np.count_nonzero(self.added_mask))

    @property
    def num_invalidated(self) -> int:
        return len(self) - self.num_added

    def slice(self, lo: int, hi: int) -> "EventBatch":
        """Rows ``[lo, hi)`` as a new batch (views, no copies)."""
        return EventBatch(
            times=self.times[lo:hi],
            kinds=self.kinds[lo:hi],
            pairs=self.pairs[lo:hi],
            edge_type=self.edge_type[lo:hi],
            labels=self.labels[lo:hi],
            edge_attr=None if self.edge_attr is None else self.edge_attr[lo:hi],
        )

    def windows(self, window_size: int) -> Iterator["EventBatch"]:
        """Iterate consecutive windows of up to ``window_size`` events."""
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        for lo in range(0, len(self), window_size):
            yield self.slice(lo, min(lo + window_size, len(self)))


def events_from_links(
    pairs: np.ndarray,
    labels: np.ndarray,
    *,
    times: Optional[np.ndarray] = None,
    edge_type: Optional[np.ndarray] = None,
    edge_attr: Optional[np.ndarray] = None,
    kind: int = ADD_EDGE,
) -> EventBatch:
    """Wrap an existing link table as an event stream.

    The workhorse for replaying an offline task's links prequentially:
    pairs arrive in index order at unit-spaced timestamps. ``edge_type``
    defaults to the labels (the convention of the bundled datasets).
    """
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    labels = np.asarray(labels, dtype=np.int64).ravel()
    m = len(pairs)
    if times is None:
        times = np.arange(m, dtype=FLOAT64)
    etype = labels.copy() if edge_type is None else np.asarray(edge_type, np.int64)
    return EventBatch(
        times=np.asarray(times, dtype=FLOAT64),
        kinds=np.full(m, kind, dtype=np.int8),
        pairs=pairs,
        edge_type=etype,
        labels=labels,
        edge_attr=None if edge_attr is None else np.asarray(edge_attr),
    )


def generate_events(
    graph: Graph,
    num_events: int,
    *,
    rng: RngLike = 0,
    add_fraction: float = 0.85,
    num_classes: Optional[int] = None,
    rate: float = 1.0,
    class_drift: float = 0.0,
    start_time: float = 0.0,
) -> EventBatch:
    """Draw a seeded temporal event stream over ``graph``.

    Add events publish a fresh undirected edge between two distinct
    uniformly drawn nodes with a class drawn from a categorical that can
    drift over time (``class_drift`` tilts the logits linearly in event
    order, skewing late events toward higher class ids — the knob the
    drift metrics are calibrated against). Invalidate events retract an
    edge drawn uniformly from the *currently live* set (base edges plus
    earlier adds, minus earlier retractions), so every invalidation in
    the stream is matchable. Inter-arrival times are exponential with
    the given ``rate``.

    Edge attributes are one-hot in the graph's ``edge_attr`` width when
    the graph carries attributes (the bundled datasets' convention),
    otherwise omitted.
    """
    if num_events < 0:
        raise ValueError("num_events must be non-negative")
    if not 0.0 <= add_fraction <= 1.0:
        raise ValueError("add_fraction must be in [0, 1]")
    gen = as_generator(rng)
    n = graph.num_nodes
    if n < 2:
        raise ValueError("graph needs at least 2 nodes to stream events")
    if num_classes is None:
        num_classes = int(graph.edge_type.max()) + 1 if graph.num_edges else 1
    attr_dim = 0 if graph.edge_attr is None else int(graph.edge_attr.shape[1])

    # Live undirected edge list: base edges deduped to u <= v, then a
    # swap-pop list so retraction targets are O(1) to remove.
    src, dst = graph.edge_index
    und = np.unique(
        np.stack([np.minimum(src, dst), np.maximum(src, dst)], axis=1), axis=0
    )
    live: List[Tuple[int, int, int]] = [
        (int(u), int(v), int(t))
        for (u, v), t in zip(und, graph.edge_type[_first_arc_ids(graph, und)])
    ]

    times = start_time + np.cumsum(gen.exponential(1.0 / max(rate, 1e-12), num_events))
    kinds = np.empty(num_events, dtype=np.int8)
    pairs = np.empty((num_events, 2), dtype=np.int64)
    etypes = np.empty(num_events, dtype=np.int64)
    labels = np.empty(num_events, dtype=np.int64)
    base_logits = np.zeros(num_classes)
    drift_dir = np.linspace(-1.0, 1.0, num_classes)
    for i in range(num_events):
        is_add = gen.random() < add_fraction or not live
        if is_add:
            u = int(gen.integers(0, n))
            v = int(gen.integers(0, n - 1))
            if v >= u:
                v += 1
            t_frac = i / max(num_events - 1, 1)
            logits = base_logits + class_drift * t_frac * drift_dir
            p = np.exp(logits - logits.max())
            c = int(gen.choice(num_classes, p=p / p.sum()))
            kinds[i] = ADD_EDGE
            pairs[i] = (u, v)
            etypes[i] = labels[i] = c
            live.append((u, v, c))
        else:
            j = int(gen.integers(0, len(live)))
            u, v, c = live[j]
            live[j] = live[-1]
            live.pop()
            kinds[i] = INVALIDATE_EDGE
            pairs[i] = (u, v)
            etypes[i] = labels[i] = c
    attr = np.eye(attr_dim)[etypes % attr_dim] if attr_dim else None
    obs.count("stream.events.generated", float(num_events))
    return EventBatch(
        times=times,
        kinds=kinds,
        pairs=pairs,
        edge_type=etypes,
        labels=labels,
        edge_attr=attr,
    )


def _first_arc_ids(graph: Graph, und_pairs: np.ndarray) -> np.ndarray:
    """Arc id of one representative arc per deduped undirected pair."""
    if len(und_pairs) == 0:
        return np.empty(0, dtype=np.int64)
    src, dst = graph.edge_index
    key = np.minimum(src, dst) * np.int64(graph.num_nodes) + np.maximum(src, dst)
    order = np.argsort(key, kind="stable")
    want = und_pairs[:, 0] * np.int64(graph.num_nodes) + und_pairs[:, 1]
    return order[np.searchsorted(key[order], want)]
