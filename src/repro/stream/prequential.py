"""Prequential (test-then-train) evaluation over a temporal stream.

Each window of events is first *scored* — the current model classifies
the window's newly published links against the latest frozen snapshot —
and only then *learned from*: the events are applied to the streaming
graph and the model takes a few optimizer epochs over a sliding window
of recent links. Interleaving test-before-train gives an unbiased
online estimate of generalization (every link is scored strictly before
the model sees it), the standard protocol for evolving-data evaluation.

Bit-compatibility with the offline evaluator
--------------------------------------------
A stream with zero mutation events (``mutate_graph=False`` or no events
applied) and ``train_epochs=0`` reproduces
:func:`repro.seal.evaluate` *bit for bit* provided the stream windows
align with the offline evaluation batches (``window_size`` a multiple
of ``eval_batch_size`` on a pure-add stream): per-link extraction
streams are keyed on each link's *global stream index* (matching the
offline task's index keying), snapshots preserve CSR traversal order,
and aligned windows reproduce the offline batch partition, so every
forward sees an identical batch. ``PrequentialResult.final`` is then
field-for-field identical to the offline :class:`EvalResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro import obs
from repro.metrics.classification import (
    accuracy,
    average_precision,
    confusion_matrix,
)
from repro.metrics.ranking import multiclass_auc
from repro.seal.dataset import LinkTask, SEALDataset
from repro.seal.evaluator import predict_proba
from repro.seal.results import EvalResult
from repro.seal.trainer import TrainConfig, train
from repro.stream.drift import DriftTracker
from repro.stream.events import EventBatch
from repro.stream.snapshot import StreamingGraph
from repro.utils.rng import RngLike, derive

__all__ = ["StreamConfig", "WindowRecord", "PrequentialResult", "run_prequential"]


@dataclass
class StreamConfig:
    """Knobs of one prequential run.

    ``window_size`` counts *events* per window; only add events become
    test links. ``train_window`` is the sliding buffer of most recent
    links re-fit after each window (``train_epochs=0`` disables
    training entirely — the pure-evaluation mode the offline-equivalence
    guarantee is stated for).
    """

    window_size: int = 64
    eval_batch_size: int = 16
    train_epochs: int = 1
    train_window: int = 256
    batch_size: int = 16
    lr: float = 1e-3
    mutate_graph: bool = True
    compute_dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.window_size <= 0:
            raise ValueError("window_size must be positive")
        if self.eval_batch_size <= 0:
            raise ValueError("eval_batch_size must be positive")
        if self.train_epochs < 0:
            raise ValueError("train_epochs must be non-negative")
        if self.train_window <= 0 or self.batch_size <= 0:
            raise ValueError("train_window and batch_size must be positive")


@dataclass(frozen=True)
class WindowRecord:
    """Bookkeeping for one prequential window."""

    window: int
    version: int  # snapshot version the window was scored against
    events: int
    test_links: int
    accuracy: float
    trained_links: int
    predict_s: float
    train_s: float


@dataclass
class PrequentialResult:
    """Everything one prequential run produced.

    ``final`` aggregates every scored link with the offline evaluator's
    metric suite (one-vs-rest AUC, AP, accuracy, confusion); it is
    ``None`` when the stream published no links. ``probs``/``labels``/
    ``pairs`` concatenate the windows in stream order.
    """

    windows: List[WindowRecord] = field(default_factory=list)
    probs: Optional[np.ndarray] = None
    labels: Optional[np.ndarray] = None
    pairs: Optional[np.ndarray] = None
    final: Optional[EvalResult] = None
    drift: Optional[DriftTracker] = None

    @property
    def num_links(self) -> int:
        return 0 if self.labels is None else int(len(self.labels))

    def summary(self) -> dict:
        out = {
            "windows": len(self.windows),
            "links": self.num_links,
            "trained_links": int(sum(w.trained_links for w in self.windows)),
            "predict_s": float(sum(w.predict_s for w in self.windows)),
            "train_s": float(sum(w.train_s for w in self.windows)),
        }
        if self.final is not None:
            out["final"] = self.final.summary()
        if self.drift is not None:
            out["drift"] = self.drift.summary()
        return out


@dataclass
class _WindowTask(LinkTask):
    """A LinkTask over one window, keyed on global stream indices.

    ``link_ids[i]`` is link ``i``'s position in the whole stream's
    add-event order; ``link_key`` keys the extraction stream on it so a
    link's subgraph is identical whether it is extracted here, in a
    later training window, or by the offline evaluator indexing the
    full link table.
    """

    link_ids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    def link_key(self, index: int) -> str:
        return str(int(self.link_ids[index]))


def _window_task(
    template: LinkTask,
    graph,
    pairs: np.ndarray,
    labels: np.ndarray,
    link_ids: np.ndarray,
) -> _WindowTask:
    return _WindowTask(
        graph=graph,
        pairs=np.asarray(pairs, dtype=np.int64),
        labels=np.asarray(labels, dtype=np.int64),
        num_classes=template.num_classes,
        feature_config=template.feature_config,
        class_names=list(template.class_names),
        name=template.name,
        subgraph_mode=template.subgraph_mode,
        num_hops=template.num_hops,
        max_subgraph_nodes=template.max_subgraph_nodes,
        edge_attr_dim=template.edge_attr_dim,
        link_ids=np.asarray(link_ids, dtype=np.int64),
    )


def run_prequential(
    model,
    stream: StreamingGraph,
    template: LinkTask,
    events: EventBatch,
    config: Optional[StreamConfig] = None,
    *,
    rng: RngLike = 0,
    extraction_rng: RngLike = 0,
    drift: Optional[DriftTracker] = None,
    rng_class_pick: int = 0,
) -> PrequentialResult:
    """Drive ``model`` prequentially over ``events``.

    Parameters
    ----------
    model: a DGCNN-family classifier (trained in place).
    stream: the :class:`StreamingGraph` the events mutate.
    template: a :class:`LinkTask` supplying the task settings (feature
        config, hops, classes, name) — its own pair table is ignored.
    events: the full event stream, windowed by ``config.window_size``.
    rng: seed material for the per-window training shuffles.
    extraction_rng: seed material of the extraction streams — match the
        offline ``SEALDataset`` seed to reproduce it bit for bit.
    drift: optional externally owned tracker (default: a fresh one).
    """
    config = config or StreamConfig()
    tracker = drift or DriftTracker()
    result = PrequentialResult(drift=tracker)

    links_seen = 0
    buf_ids: List[np.ndarray] = []
    buf_pairs: List[np.ndarray] = []
    buf_labels: List[np.ndarray] = []
    all_probs: List[np.ndarray] = []
    all_labels: List[np.ndarray] = []
    all_pairs: List[np.ndarray] = []

    with obs.trace("stream"):
        for w, batch in enumerate(events.windows(config.window_size)):
            snap = stream.snapshot()
            add = batch.added_mask
            test_pairs = batch.pairs[add]
            test_labels = batch.labels[add]
            acc = float("nan")
            predict_s = 0.0
            if len(test_pairs):
                ids = links_seen + np.arange(len(test_pairs), dtype=np.int64)
                task = _window_task(template, snap.graph, test_pairs, test_labels, ids)
                ds = SEALDataset(task, rng=extraction_rng)
                t0 = time.perf_counter()
                probs = predict_proba(
                    model,
                    ds,
                    np.arange(len(test_pairs)),
                    batch_size=config.eval_batch_size,
                )
                predict_s = time.perf_counter() - t0
                acc = accuracy(test_labels, probs.argmax(axis=1))
                all_probs.append(probs)
                all_labels.append(test_labels)
                all_pairs.append(test_pairs)
                buf_ids.append(ids)
                buf_pairs.append(test_pairs)
                buf_labels.append(test_labels)
                links_seen += len(test_pairs)
                obs.count("stream.prequential.links", float(len(test_pairs)))

            if config.mutate_graph and len(batch):
                stream.apply(batch)

            train_s = 0.0
            trained = 0
            if config.train_epochs > 0 and buf_ids:
                ids_all = np.concatenate(buf_ids)[-config.train_window :]
                pairs_all = np.concatenate(buf_pairs)[-config.train_window :]
                labels_all = np.concatenate(buf_labels)[-config.train_window :]
                buf_ids = [ids_all]
                buf_pairs = [pairs_all]
                buf_labels = [labels_all]
                snap_t = stream.snapshot()
                task_t = _window_task(
                    template, snap_t.graph, pairs_all, labels_all, ids_all
                )
                ds_t = SEALDataset(task_t, rng=extraction_rng)
                tc = TrainConfig(
                    epochs=config.train_epochs,
                    batch_size=config.batch_size,
                    lr=config.lr,
                    compute_dtype=config.compute_dtype,
                )
                t0 = time.perf_counter()
                train(
                    model,
                    ds_t,
                    np.arange(len(labels_all)),
                    tc,
                    rng=derive(rng, "stream-train", str(w)),
                    verbose=False,
                )
                train_s = time.perf_counter() - t0
                trained = int(len(labels_all))

            post = stream.snapshot().graph if config.mutate_graph else snap.graph
            tracker.update(
                labels=test_labels if len(test_pairs) else None,
                num_classes=template.num_classes,
                graph=post,
                edge_attr=(
                    batch.edge_attr[add] if batch.edge_attr is not None else None
                ),
                accuracy=acc if len(test_pairs) else None,
            )
            result.windows.append(
                WindowRecord(
                    window=w,
                    version=snap.version,
                    events=len(batch),
                    test_links=int(len(test_pairs)),
                    accuracy=acc,
                    trained_links=trained,
                    predict_s=predict_s,
                    train_s=train_s,
                )
            )
            obs.count("stream.windows")

    if all_probs:
        t0 = time.perf_counter()
        probs = np.concatenate(all_probs, axis=0)
        labels = np.concatenate(all_labels)
        preds = probs.argmax(axis=1)
        n_classes = template.num_classes
        result.probs = probs
        result.labels = labels
        result.pairs = np.concatenate(all_pairs, axis=0)
        # The offline evaluator's exact metric suite over the streamed
        # links, so a zero-mutation run is comparable field by field.
        result.final = EvalResult(
            auc=multiclass_auc(labels, probs),
            ap=average_precision(labels, preds, n_classes),
            accuracy=accuracy(labels, preds),
            auc_random_class=multiclass_auc(labels, probs, rng=rng_class_pick),
            confusion=confusion_matrix(labels, preds, n_classes),
            probs=probs,
            labels=labels,
            timings={"metrics_s": time.perf_counter() - t0},
        )
    return result
