"""Incremental graph maintenance with epoch-versioned CSR snapshots.

:class:`StreamingGraph` keeps one mutable arc table in **insertion
order** (the base graph's arcs, then every added arc appended at the
end) plus an incrementally maintained **sorted index** over it:

- adds are appended to the master table and merged into the sorted
  index with ``np.searchsorted`` + ``np.insert`` (no re-sort: within a
  source bucket existing arcs keep their order with new arcs after
  them — exactly what a stable argsort of the master's source column
  produces);
- invalidations flip an ``alive`` bit on both arc directions of the
  first live matching edge, and the dead rows are physically dropped by
  periodic compaction.

``snapshot()`` freezes the current state into an ordinary immutable
:class:`repro.graph.Graph`. The storage arrays are the master table
(insertion order) and the CSR is assembled directly from the sorted
index (``indptr`` from a bincount prefix sum, ``indices``/``edge_ids``
gathered through it) and handed to :class:`repro.store.GraphStorage`
precomputed — snapshotting never pays the O(E log E) argsort the static
constructor would, yet yields byte-for-byte the CSR that argsort would
build.

Keeping the storage in insertion order is load-bearing for serving:
surviving arcs keep their arc *ids* (adds only append; compaction only
drops) and therefore their relative order. Subgraph extraction orders a
subgraph's edges by arc id, so a pair whose neighborhood the delta did
not touch extracts — and scores — bit-identically on consecutive
snapshots, which is what lets ``repro.serve``'s delta-aware
invalidation keep survivors' cached results.

Every snapshot carries a :class:`GraphDelta` — the exact added/removed
undirected pairs since the previous snapshot — which is what
``repro.serve`` consumes for delta-aware cache invalidation. Each
snapshot is a full citizen of the ``repro.store`` format:
``save()``/``open(mmap=True)`` work unchanged, so old epochs stay
zero-copy readable while the stream moves on.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, NamedTuple, Optional

import numpy as np

from repro import obs
from repro.graph.structure import Graph
from repro.store.graph_storage import GraphStorage
from repro.stream.events import ADD_EDGE, INVALIDATE_EDGE, EventBatch

__all__ = ["GraphDelta", "Snapshot", "StreamingGraph"]


@dataclass(frozen=True)
class GraphDelta:
    """What changed between two snapshot versions.

    ``added`` / ``removed`` are ``(K, 2)`` undirected node pairs (one
    row per edge event that took effect). ``touched_nodes`` — the
    deduped union of their endpoints — is the seed set delta-aware
    invalidation grows k-hop neighborhoods from.
    """

    from_version: int
    to_version: int
    added: np.ndarray
    removed: np.ndarray

    @property
    def is_empty(self) -> bool:
        return len(self.added) == 0 and len(self.removed) == 0

    @property
    def touched_nodes(self) -> np.ndarray:
        """Sorted unique endpoints of every added/removed edge."""
        parts = [self.added.ravel(), self.removed.ravel()]
        return np.unique(np.concatenate(parts)).astype(np.int64)

    def merge(self, other: "GraphDelta") -> "GraphDelta":
        """Compose with the delta that follows this one.

        Conservative union: an edge added then removed inside the merged
        span appears in both lists, which only ever widens the retired
        set downstream — never misses an affected pair.
        """
        if other.from_version != self.to_version:
            raise ValueError(
                f"cannot merge delta ending at v{self.to_version} with one "
                f"starting at v{other.from_version}"
            )
        return GraphDelta(
            from_version=self.from_version,
            to_version=other.to_version,
            added=np.concatenate([self.added, other.added]),
            removed=np.concatenate([self.removed, other.removed]),
        )


class Snapshot(NamedTuple):
    """One epoch-versioned frozen view of the streaming graph."""

    version: int
    graph: Graph
    delta: GraphDelta
    path: Optional[Path] = None


class StreamingGraph:
    """Mutable graph accepting event batches, emitting frozen snapshots.

    Parameters
    ----------
    base: the version-0 graph (any :class:`repro.graph.Graph`).
    compact_every: compact tombstoned rows out of the arc table at the
        latest every this many snapshots (and earlier once a quarter of
        the table is dead).
    snapshot_dir: when given, each snapshot is also persisted with
        ``Graph.save`` under ``snapshot_dir/snapshot_NNNNNN`` so old
        epochs remain mmap-openable after the process exits.

    The version-0 snapshot is ``base`` itself — same storage order, same
    arc ids — so extraction (which orders subgraph edges by arc id) is
    bit-for-bit the offline path. Later snapshots keep the insertion
    order (appends at the end, compaction preserves relative order), so
    arcs untouched by the stream extract bit-identically across
    versions.
    """

    def __init__(
        self,
        base: Graph,
        *,
        compact_every: int = 8,
        snapshot_dir=None,
    ):
        if compact_every <= 0:
            raise ValueError("compact_every must be positive")
        self._base = base
        self.num_nodes = base.num_nodes
        self._node_type = base.node_type
        self._node_features = base.node_features
        # Master arc table, insertion order (base order, appends at end).
        self._src = np.ascontiguousarray(base.edge_index[0])
        self._dst = np.ascontiguousarray(base.edge_index[1])
        self._etype = np.ascontiguousarray(base.edge_type)
        self._eattr = (
            None if base.edge_attr is None else np.ascontiguousarray(base.edge_attr)
        )
        # Sorted index: master positions in (src, insertion) order, plus
        # the gathered source column to searchsorted against.
        self._order = np.argsort(self._src, kind="stable")
        self._sorted_src = self._src[self._order]
        self._alive = np.ones(self._src.size, dtype=bool)
        self._dead = 0
        self.compact_every = int(compact_every)
        self.snapshot_dir = None if snapshot_dir is None else Path(snapshot_dir)
        self._version = 0
        self._dirty = False
        self._pending_added: List[np.ndarray] = []
        self._pending_removed: List[np.ndarray] = []
        self._cached: Optional[Snapshot] = None

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Snapshot epoch of the current state (0 = the base graph)."""
        return self._version

    @property
    def live_edges(self) -> int:
        """Undirected live edge count."""
        return (self._src.size - self._dead) // 2

    @property
    def tombstones(self) -> int:
        """Dead arcs awaiting compaction."""
        return self._dead

    def stats(self) -> dict:
        return {
            "version": self._version,
            "num_nodes": self.num_nodes,
            "live_edges": self.live_edges,
            "tombstone_arcs": self._dead,
            "table_arcs": int(self._src.size),
        }

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def apply(self, events: EventBatch) -> None:
        """Apply one event batch (all adds, then all invalidations).

        Within a batch, adds land before invalidations so a batch that
        publishes and retracts the same edge nets out to no edge.
        Invalidations that match no live edge are counted
        (``stream.events.unmatched_invalidate``) and skipped — they
        contribute nothing to the delta.
        """
        if len(events) == 0:
            return
        pairs = np.asarray(events.pairs, dtype=np.int64)
        if pairs.size and (pairs.min() < 0 or pairs.max() >= self.num_nodes):
            raise ValueError("event pairs reference nodes outside the graph")
        add = events.added_mask
        if np.any(add):
            self._apply_adds(events.slice(0, len(events)), add)
        inv = ~add
        if np.any(inv):
            self._apply_invalidations(pairs[inv])
        self._dirty = True
        self._cached = None
        obs.count("stream.events.add", float(np.count_nonzero(add)))
        obs.count("stream.events.invalidate", float(np.count_nonzero(inv)))
        obs.gauge("stream.edges.live", float(self.live_edges))
        obs.gauge("stream.edges.tombstones", float(self._dead))

    def _apply_adds(self, events: EventBatch, mask: np.ndarray) -> None:
        u = events.pairs[mask, 0]
        v = events.pairs[mask, 1]
        etype = events.edge_type[mask]
        eattr = None if events.edge_attr is None else events.edge_attr[mask]
        if self._eattr is not None:
            if eattr is None:
                raise ValueError("graph carries edge_attr but events have none")
            if eattr.shape[1] != self._eattr.shape[1]:
                raise ValueError(
                    f"event edge_attr width {eattr.shape[1]} != graph's "
                    f"{self._eattr.shape[1]}"
                )
        # Both arc directions, interleaved like Graph.from_undirected
        # (arc 2i is u->v, arc 2i+1 is v->u), appended to the master
        # table — existing arcs keep their ids, which is what keeps
        # untouched subgraphs extraction-bit-identical across versions.
        first = self._src.size
        arc_src = np.empty(2 * u.size, dtype=np.int64)
        arc_dst = np.empty(2 * u.size, dtype=np.int64)
        arc_src[0::2], arc_src[1::2] = u, v
        arc_dst[0::2], arc_dst[1::2] = v, u
        arc_type = np.repeat(etype, 2)
        self._src = np.concatenate([self._src, arc_src])
        self._dst = np.concatenate([self._dst, arc_dst])
        self._etype = np.concatenate([self._etype, arc_type])
        if self._eattr is not None:
            arc_attr = np.repeat(np.asarray(eattr, dtype=self._eattr.dtype), 2, axis=0)
            self._eattr = np.concatenate([self._eattr, arc_attr])
        self._alive = np.concatenate(
            [self._alive, np.ones(arc_src.size, dtype=bool)]
        )
        # Merge the new positions into the sorted index: stable bucketing
        # plus side="right" insertion keeps each source bucket in
        # insertion order — what a stable argsort of the master's source
        # column would produce.
        order = np.argsort(arc_src, kind="stable")
        pos = np.searchsorted(self._sorted_src, arc_src[order], side="right")
        self._sorted_src = np.insert(self._sorted_src, pos, arc_src[order])
        self._order = np.insert(self._order, pos, first + order)
        self._pending_added.append(np.stack([u, v], axis=1))

    def _apply_invalidations(self, pairs: np.ndarray) -> None:
        removed = []
        for u, v in pairs:
            a = self._kill_arc(int(u), int(v))
            b = self._kill_arc(int(v), int(u)) if a else False
            if a and b:
                self._dead += 2
                removed.append((int(u), int(v)))
            else:
                obs.count("stream.events.unmatched_invalidate")
        if removed:
            self._pending_removed.append(np.asarray(removed, dtype=np.int64))

    def _kill_arc(self, s: int, d: int) -> bool:
        lo = int(np.searchsorted(self._sorted_src, s, side="left"))
        hi = int(np.searchsorted(self._sorted_src, s, side="right"))
        rows = self._order[lo:hi]
        hit = np.flatnonzero((self._dst[rows] == d) & self._alive[rows])
        if hit.size == 0:
            return False
        self._alive[rows[hit[0]]] = False
        return True

    def _compact(self) -> None:
        keep = self._alive
        newpos = np.cumsum(keep) - 1
        self._src = self._src[keep]
        self._dst = self._dst[keep]
        self._etype = self._etype[keep]
        if self._eattr is not None:
            self._eattr = self._eattr[keep]
        live = keep[self._order]
        self._order = newpos[self._order[live]]
        self._sorted_src = self._sorted_src[live]
        self._alive = np.ones(self._src.size, dtype=bool)
        self._dead = 0
        obs.count("stream.compactions")

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Snapshot:
        """Freeze the current state into an epoch-versioned ``Graph``.

        Bumps the version only when events were applied since the last
        snapshot; with nothing pending the previous snapshot is returned
        unchanged (same ``Graph`` object, empty delta), so repeated
        snapshotting of a quiet stream is free.
        """
        if self._cached is not None and not self._dirty:
            return self._cached
        from_version = self._version
        if self._dirty:
            self._version += 1
            # Compact on schedule, or eagerly once a quarter of the
            # table is tombstones — keeps applies O(live + dead/4).
            if self._dead and (
                self._version % self.compact_every == 0
                or 4 * self._dead >= self._src.size
            ):
                self._compact()
        if self._version == 0:
            # An untouched stream's snapshot is the base graph *object*:
            # same storage order and arc ids, so downstream extraction
            # (which orders subgraph edges by arc id) is bit-for-bit the
            # offline path, not merely CSR-equivalent.
            graph = self._base
        else:
            if self._dead:
                keep = self._alive
                newpos = np.cumsum(keep) - 1
                src, dst = self._src[keep], self._dst[keep]
                etype = self._etype[keep]
                eattr = None if self._eattr is None else self._eattr[keep]
                live = keep[self._order]
                sorted_ids = newpos[self._order[live]]
            else:
                # No tombstones: alias the internal arrays. Safe because
                # apply() only ever replaces them (concatenate/insert
                # copy) and in-place mutation is confined to the alive
                # bitmap.
                src, dst, etype, eattr = self._src, self._dst, self._etype, self._eattr
                sorted_ids = self._order
            # The sorted index IS the stable-argsort permutation
            # Graph.csr() would compute over this storage: hand the CSR
            # over precomputed instead of paying the O(E log E) sort.
            indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
            np.cumsum(np.bincount(src, minlength=self.num_nodes), out=indptr[1:])
            storage = GraphStorage(
                self.num_nodes,
                np.stack([src, dst]),
                node_type=self._node_type,
                edge_type=etype,
                node_features=self._node_features,
                edge_attr=eattr,
                csr=(indptr, dst[sorted_ids], sorted_ids),
            )
            graph = Graph.from_storage(storage)
        delta = GraphDelta(
            from_version=from_version,
            to_version=self._version,
            added=(
                np.concatenate(self._pending_added)
                if self._pending_added
                else np.empty((0, 2), dtype=np.int64)
            ),
            removed=(
                np.concatenate(self._pending_removed)
                if self._pending_removed
                else np.empty((0, 2), dtype=np.int64)
            ),
        )
        path = None
        if self.snapshot_dir is not None:
            path = self.snapshot_dir / f"snapshot_{self._version:06d}"
            if not (path / "meta.json").exists():
                graph.save(path)
            graph = Graph.open(path, mmap=True)
        snap = Snapshot(version=self._version, graph=graph, delta=delta, path=path)
        self._pending_added = []
        self._pending_removed = []
        self._dirty = False
        self._cached = snap
        obs.count("stream.snapshots")
        return snap
