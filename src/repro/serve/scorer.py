"""Typed link scoring: ``ScoreRequest`` → ``LinkScorer`` → ``ScoreResult``.

:class:`LinkScorer` is the one scoring path — the in-process server and
the offline callers (the profile CLI, the deprecated ``classify_pairs``
shim) all go through it, so there is exactly one place where extraction
settings, feature recipes and the model meet. Three properties it
guarantees:

* **Compatibility is checked up front.** A bundle whose feature recipe
  or edge-attribute width disagrees with the supplied graph raises
  :class:`CompatibilityError` at construction, not a shape error five
  layers into the forward pass.
* **Scores are composition-independent, bitwise.** Every forward pass
  runs at a fixed micro-batch width (requests padded cyclically), and a
  pair's extraction stream is keyed on the pair *content*, not on
  arrival order. A pair therefore gets bit-identical probabilities
  whether it is scored alone, inside a coalesced micro-batch, or after a
  cache hit — the property the server's coalescing relies on.
  (NumPy's BLAS-backed matmul rounds the same row differently for
  different batch row-counts; pinning the row-count removes the last
  composition-dependent stage.)
* **Work is reused.** Extracted subgraphs live in a growing
  :class:`~repro.data.store.SubgraphStore` (bulk extraction engine, plan
  cache and all), and final probabilities are memoized per
  ``(pair, graph_version)`` until :meth:`LinkScorer.invalidate`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.data.loader import collate_from_store
from repro.data.store import SubgraphStore
from repro.graph.structure import Graph
from repro.graph.traversal import k_hop_union
from repro.nn import dtype as _dtype
from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import no_grad
from repro.serve.bundle import ModelBundle
from repro.seal.features import FeatureConfig
from repro.utils.rng import RngLike

__all__ = [
    "CompatibilityError",
    "ScoreRequest",
    "ScoreResult",
    "Rejected",
    "LinkScorer",
]


class CompatibilityError(ValueError):
    """Bundle and graph disagree (feature recipe, widths, node space)."""


def _as_pairs(pairs) -> np.ndarray:
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim == 1 and pairs.shape == (2,):
        pairs = pairs[None, :]
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError("pairs must have shape (M, 2)")
    return pairs


@dataclass
class ScoreRequest:
    """One scoring query: node pairs plus delivery constraints.

    ``deadline_s`` is an *absolute* :func:`time.monotonic` instant; use
    :meth:`with_budget` to spell it as a relative latency budget. A
    request whose deadline has passed is dropped before any extraction
    work is spent on it.
    """

    pairs: np.ndarray
    request_id: Optional[str] = None
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        self.pairs = _as_pairs(self.pairs)

    @classmethod
    def with_budget(
        cls, pairs, budget_s: Optional[float], request_id: Optional[str] = None
    ) -> "ScoreRequest":
        """Build a request whose deadline is ``budget_s`` from now."""
        deadline = None if budget_s is None else time.monotonic() + budget_s
        return cls(pairs, request_id=request_id, deadline_s=deadline)

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline_s is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline_s


@dataclass
class ScoreResult:
    """Per-pair class probabilities plus serving metadata.

    ``probs[i]`` sums to one; ``predicted[i]`` is its argmax and
    ``predicted_names[i]`` the matching class name. ``num_nodes`` /
    ``num_edges`` report each pair's enclosing subgraph; ``cached``
    marks pairs answered from the score cache. ``timing`` breaks the
    request into ``extract_s`` / ``forward_s`` / ``total_s``.
    """

    probs: np.ndarray
    predicted: np.ndarray
    class_names: Tuple[str, ...]
    num_nodes: np.ndarray
    num_edges: np.ndarray
    cached: np.ndarray
    timing: Dict[str, float] = field(default_factory=dict)
    request_id: Optional[str] = None

    ok = True

    @property
    def predicted_names(self) -> List[str]:
        return [self.class_names[int(c)] for c in self.predicted]

    def narrow(self, lo: int, hi: int, request_id: Optional[str] = None) -> "ScoreResult":
        """Row-slice view for one member request of a coalesced batch."""
        return ScoreResult(
            probs=self.probs[lo:hi],
            predicted=self.predicted[lo:hi],
            class_names=self.class_names,
            num_nodes=self.num_nodes[lo:hi],
            num_edges=self.num_edges[lo:hi],
            cached=self.cached[lo:hi],
            timing=dict(self.timing),
            request_id=request_id,
        )


@dataclass
class Rejected:
    """A request the service declined — typed, not an exception.

    ``reason`` is one of ``"queue_full"`` (admission control shed it),
    ``"deadline"`` (its budget expired before scoring began) or
    ``"shutdown"`` (the server stopped with the request still queued).
    """

    reason: str
    detail: str = ""
    request_id: Optional[str] = None

    ok = False


ScoreOutcome = Union[ScoreResult, Rejected]


class _ServeTask:
    """Duck-typed task the extraction engine runs against.

    Looks like a :class:`~repro.seal.LinkTask` to
    :func:`repro.data.extraction.build_packed_samples` but its pair
    table grows as the scorer meets new pairs, and ``link_key`` keys
    each pair's extraction stream on its content (``"u:v"``) so the
    subgraph — and hence the score — is independent of arrival order.
    """

    def __init__(self, graph: Graph, bundle: ModelBundle):
        self.graph = graph
        self.name = bundle.task_name
        self.num_hops = bundle.num_hops
        self.subgraph_mode = bundle.subgraph_mode
        self.max_subgraph_nodes = bundle.max_subgraph_nodes
        self.edge_attr_dim = bundle.edge_attr_dim
        self.feature_config = bundle.feature_config
        self.pairs = np.empty((0, 2), dtype=np.int64)

    def link_key(self, index: int) -> str:
        u, v = self.pairs[index]
        return f"{int(u)}:{int(v)}"


def _validate_compatibility(bundle: ModelBundle, graph: Graph) -> None:
    fc: FeatureConfig = bundle.feature_config
    if fc.num_node_types > 0:
        observed = int(graph.node_type.max()) + 1 if graph.num_nodes else 0
        if observed > fc.num_node_types:
            raise CompatibilityError(
                f"graph has node types up to {observed - 1} but the bundle's "
                f"feature recipe one-hots only {fc.num_node_types} types"
            )
    if fc.explicit_dim > 0:
        if graph.node_features is None:
            raise CompatibilityError(
                f"bundle expects {fc.explicit_dim}-wide explicit node features "
                "but the graph carries none"
            )
        if graph.node_features.shape[1] != fc.explicit_dim:
            raise CompatibilityError(
                f"graph node-feature width {graph.node_features.shape[1]} != "
                f"bundle explicit_dim {fc.explicit_dim}"
            )
    if fc.embeddings is not None and fc.embeddings.shape[0] != graph.num_nodes:
        raise CompatibilityError(
            f"bundle embeddings cover {fc.embeddings.shape[0]} nodes but the "
            f"graph has {graph.num_nodes}"
        )
    if bundle.edge_attr_dim > 0:
        if graph.edge_attr is None:
            raise CompatibilityError(
                f"bundle expects {bundle.edge_attr_dim}-wide edge attributes "
                "but the graph carries none"
            )
        if graph.edge_attr.shape[1] != bundle.edge_attr_dim:
            raise CompatibilityError(
                f"graph edge-attribute width {graph.edge_attr.shape[1]} != "
                f"bundle edge_attr_dim {bundle.edge_attr_dim}"
            )


class LinkScorer:
    """Score arbitrary node pairs of one graph with a bundled model.

    Parameters
    ----------
    bundle: the trained-model artifact (weights + recipe + settings).
    graph: the knowledge graph to serve; validated against the bundle
        up front (:class:`CompatibilityError` on any disagreement).
    model: optional pre-built module sharing the bundle's weights —
        skips :meth:`ModelBundle.build_model` (the live-training case).
    micro_batch: fixed forward width. Every forward pass runs exactly
        this many subgraphs (short chunks padded cyclically), which is
        what makes scores bitwise independent of request coalescing.
    cache_scores: memoize probabilities per ``(pair, graph_version)``.
    rng: override for the bundle's extraction seed (``None`` = bundle's).
    compute_dtype: precision policy for extraction + forward passes
        (``None`` = the bundle's recorded policy). Under ``"float32"``
        the model weights, the subgraph store and every forward run
        reduced; returned probabilities are always float64.
    """

    def __init__(
        self,
        bundle: ModelBundle,
        graph: Graph,
        *,
        model: Optional[Module] = None,
        micro_batch: int = 16,
        cache_scores: bool = True,
        initial_capacity: int = 256,
        rng: Optional[RngLike] = None,
        compute_dtype: Optional[str] = None,
    ):
        if micro_batch < 2:
            # A 1-row forward takes BLAS's gemv path, which rounds
            # differently from the gemm path — composition independence
            # needs at least two rows.
            raise ValueError("micro_batch must be >= 2")
        _validate_compatibility(bundle, graph)
        self.bundle = bundle
        self.graph = graph
        self.compute_dtype = _dtype.resolve_dtype(
            bundle.compute_dtype if compute_dtype is None else compute_dtype
        )
        self.model = bundle.build_model() if model is None else model
        if self.compute_dtype != _dtype.FLOAT64:
            _dtype.cast_module(self.model, self.compute_dtype)
        head = int(self.model.lin2.out_features)
        if head != bundle.num_classes:
            raise CompatibilityError(
                f"model output head is {head} wide but the bundle declares "
                f"{bundle.num_classes} classes"
            )
        self.micro_batch = int(micro_batch)
        self.cache_scores = bool(cache_scores)
        self._seed: RngLike = bundle.extraction_seed if rng is None else rng
        self._task = _ServeTask(graph, bundle)
        self._capacity = max(int(initial_capacity), self.micro_batch)
        self._pairs = np.empty((self._capacity, 2), dtype=np.int64)
        self._task.pairs = self._pairs
        self.store = SubgraphStore(
            self._capacity,
            bundle.feature_config.width,
            edge_attr_dim=0 if graph.edge_attr is None else graph.edge_attr.shape[1],
            node_feature_dim=(
                0 if graph.node_features is None else graph.node_features.shape[1]
            ),
            float_dtype=self.compute_dtype,
        )
        self._slots: Dict[Tuple[int, int], int] = {}
        self._cache: Dict[Tuple[int, int], np.ndarray] = {}
        # Slots are assigned from a monotone counter (not len(_slots)):
        # delta invalidation removes keys from _slots, and reusing a
        # retired key's slot for a different pair would alias its stale
        # store entry.
        self._next_slot = 0
        # Pairs registered through warm(), in registration order; these
        # are re-extracted after an invalidation retires them so warmed
        # latency survives graph changes.
        self._warm: Dict[Tuple[int, int], None] = {}
        self._graph_version = 0

    @classmethod
    def from_path(cls, path, graph: Graph, **kwargs) -> "LinkScorer":
        """Construct a scorer straight from a saved bundle file."""
        return cls(ModelBundle.load(path), graph, **kwargs)

    @classmethod
    def from_saved(cls, bundle_path, graph_dir, *, mmap: bool = True, **kwargs) -> "LinkScorer":
        """Scorer from a bundle file plus a saved graph directory.

        The graph comes back mmap-backed by default (see
        :meth:`~repro.graph.Graph.open`): the serving process maps the
        arrays read-only instead of loading a private copy, and scores
        are bit-identical to serving the in-memory graph.
        """
        return cls(ModelBundle.load(bundle_path), Graph.open(graph_dir, mmap=mmap), **kwargs)

    def warm(self, pairs) -> int:
        """Pre-extract the enclosing subgraphs of ``pairs`` into the store.

        The deployment-side counterpart of ``DataLoader.warm``: run at
        start-up (e.g. over the expected hot pairs) so first requests
        skip extraction — the usual pattern for an mmap-served graph,
        where the process boots instantly and warming is the only cold
        cost left. Returns how many distinct pairs are now extracted.

        Warmed pairs stay registered: after :meth:`invalidate` retires
        them they are re-extracted against the new graph automatically
        (counted under ``serve.cache.rewarmed_pairs``).
        """
        pairs = _as_pairs(pairs)
        keys = list(dict.fromkeys((int(u), int(v)) for u, v in pairs))
        for key in keys:
            self._warm[key] = None
        slots = np.asarray([self._slot_of(k) for k in keys], dtype=np.int64)
        self._ensure_extracted(slots)
        obs.count("serve.warmed_pairs", float(len(keys)))
        return len(keys)

    # ------------------------------------------------------------------ #
    # graph versioning / cache invalidation
    # ------------------------------------------------------------------ #
    @property
    def graph_version(self) -> int:
        """Monotone counter bumped by every :meth:`invalidate`."""
        return self._graph_version

    def invalidate(
        self,
        graph: Optional[Graph] = None,
        *,
        delta=None,
        rewarm: bool = True,
    ) -> int:
        """Declare the graph changed: retire stale scores and subgraphs.

        Without ``delta`` this is the full clear: every memoized
        probability and every packed subgraph is dropped (extractions
        depend on the graph's adjacency). With ``delta`` — a
        :class:`repro.stream.GraphDelta` or any object exposing
        ``touched_nodes``, or a plain array of touched node ids — the
        invalidation is **delta-aware**: only pairs whose ``num_hops``
        neighborhood (in the old *or* the new graph) intersects the
        touched nodes are retired. Survivors keep their packed
        subgraphs *and* their cached scores, which is sound because an
        enclosing subgraph disjoint from every touched node's k-hop
        neighborhood is unchanged by the delta — its extraction, and
        hence its probabilities, are bit-identical on the new graph.

        Pass the new :class:`Graph` to swap it in (re-validated against
        the bundle); omit it when the caller mutated the graph in place.
        Retired pairs previously registered via :meth:`warm` are
        re-extracted against the new graph unless ``rewarm=False``.
        Returns the new graph version.
        """
        if graph is not None:
            _validate_compatibility(self.bundle, graph)
        retired: List[Tuple[int, int]] = []
        full_clear = delta is None
        if not full_clear:
            touched = getattr(delta, "touched_nodes", None)
            touched = np.asarray(
                delta if touched is None else touched, dtype=np.int64
            ).ravel()
            new_graph = self.graph if graph is None else graph
            limit = min(self.graph.num_nodes, new_graph.num_nodes)
            if touched.size and (touched.min() < 0 or touched.max() >= limit):
                raise ValueError("delta touches nodes outside the graph")
            # A pair's enclosing subgraph can reach a touched node
            # through the old adjacency (an edge was removed near it) or
            # the new one (an edge was added near it) — grow the k-hop
            # halo in both graphs before retiring.
            k = self.bundle.num_hops
            affected = np.zeros(
                max(self.graph.num_nodes, new_graph.num_nodes), dtype=bool
            )
            if touched.size:
                affected[k_hop_union(self.graph, touched, k)] = True
                if new_graph is not self.graph:
                    affected[k_hop_union(new_graph, touched, k)] = True
            retired = [
                key for key in self._slots if affected[key[0]] or affected[key[1]]
            ]
            if len(retired) == len(self._slots) and self._slots:
                full_clear = True  # the delta reached everything anyway

        if graph is not None:
            self.graph = graph
            self._task.graph = graph
        self._graph_version += 1

        if full_clear:
            retired = list(self._warm)
            self._cache.clear()
            self._slots.clear()
            self._next_slot = 0
            self.store.clear()
            self.store.reserve(self._capacity)
            obs.count("serve.cache.invalidations")
        else:
            slots = np.asarray(
                [self._slots.pop(key) for key in retired], dtype=np.int64
            )
            for key in retired:
                self._cache.pop(key, None)
            self.store.evict(slots)
            obs.count("serve.cache.delta_invalidations")
            obs.count("serve.cache.retired_pairs", float(len(retired)))
            obs.count("serve.cache.survivor_pairs", float(len(self._slots)))

        if rewarm:
            rewarm_keys = [key for key in retired if key in self._warm]
            if rewarm_keys:
                slots = np.asarray(
                    [self._slot_of(key) for key in rewarm_keys], dtype=np.int64
                )
                self._ensure_extracted(slots)
                obs.count("serve.cache.rewarmed_pairs", float(len(rewarm_keys)))
        return self._graph_version

    # ------------------------------------------------------------------ #
    # pair slots and extraction
    # ------------------------------------------------------------------ #
    def _slot_of(self, key: Tuple[int, int]) -> int:
        slot = self._slots.get(key)
        if slot is not None:
            return slot
        slot = self._next_slot
        self._next_slot += 1
        if slot >= self._capacity:
            self._capacity *= 2
            grown = np.empty((self._capacity, 2), dtype=np.int64)
            grown[:slot] = self._pairs[:slot]
            self._pairs = grown
            self._task.pairs = grown
            self.store.reserve(self._capacity)
        self._pairs[slot] = key
        self._slots[key] = slot
        return slot

    def _ensure_extracted(self, slots: np.ndarray) -> None:
        missing = self.store.missing(slots)
        hits = int(slots.size) - int(missing.size)
        if hits:
            obs.count("seal.cache.hits", float(hits))
        if missing.size == 0:
            return
        from repro.data.extraction import build_packed_samples

        obs.count("seal.cache.misses", float(missing.size))
        with obs.trace("extraction"), _dtype.compute_dtype(self.compute_dtype):
            samples = build_packed_samples(self._task, self._seed, missing)
        for sample in samples:
            self.store.put(sample)

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def _forward_probs(self, slots: List[int]) -> np.ndarray:
        """Probabilities for distinct uncached slots, fixed-width forwards.

        Chunks of ``micro_batch`` slots run one forward each; a short
        chunk is padded by cycling its own members, so every forward has
        exactly ``micro_batch`` graph rows regardless of load.
        """
        B = self.micro_batch
        # Probabilities ship to callers in float64 regardless of policy.
        out = np.empty((len(slots), self.bundle.num_classes), dtype=_dtype.FLOAT64)
        edge_dim = self.bundle.edge_attr_dim
        with no_grad(), _dtype.compute_dtype(self.compute_dtype):
            for lo in range(0, len(slots), B):
                chunk = slots[lo : lo + B]
                reps = -(-B // len(chunk))  # ceil
                padded = (chunk * reps)[:B]
                obs.observe("serve.batch.occupancy", len(chunk) / B)
                batch = collate_from_store(
                    self.store, np.asarray(padded, dtype=np.int64), edge_attr_dim=edge_dim
                )
                with obs.trace("forward"):
                    probs = F.softmax(self.model(batch), axis=-1).data
                out[lo : lo + len(chunk)] = probs[: len(chunk)]
        return out

    def score(self, pairs, *, request_id: Optional[str] = None) -> ScoreResult:
        """Class probabilities for ``pairs`` (any ``(M, 2)`` array).

        Duplicate pairs are scored once; cached pairs are answered from
        the score cache; the rest are extracted (batched) and run
        through fixed-width forwards. The returned rows are bit-identical
        no matter how pairs are grouped into requests.
        """
        t0 = time.perf_counter()
        pairs = _as_pairs(pairs)
        keys = [(int(u), int(v)) for u, v in pairs]

        # Invalidation removes every stale key (all of them on a full
        # clear, the delta-affected ones otherwise), so a key's presence
        # already implies validity under the current version.
        fresh: List[Tuple[int, int]] = []
        seen = set()
        cache_hits = 0
        for key in keys:
            if self.cache_scores and key in self._cache:
                cache_hits += 1
            elif key not in seen:
                seen.add(key)
                fresh.append(key)
        obs.count("serve.cache.hits", float(cache_hits))
        obs.count("serve.cache.misses", float(len(keys) - cache_hits))

        was_training = self.model.training
        self.model.eval()
        extract_s = forward_s = 0.0
        try:
            with obs.trace("inference"):
                if fresh:
                    slots = np.asarray([self._slot_of(k) for k in fresh], dtype=np.int64)
                    te = time.perf_counter()
                    self._ensure_extracted(slots)
                    extract_s = time.perf_counter() - te
                    tf = time.perf_counter()
                    fresh_probs = self._forward_probs([int(s) for s in slots])
                    forward_s = time.perf_counter() - tf
                    for key, row in zip(fresh, fresh_probs):
                        self._cache[key] = row.copy()
        finally:
            self.model.train(was_training)

        fresh_set = set(fresh)
        probs = np.empty((len(keys), self.bundle.num_classes), dtype=_dtype.FLOAT64)
        cached = np.empty(len(keys), dtype=bool)
        num_nodes = np.empty(len(keys), dtype=np.int64)
        num_edges = np.empty(len(keys), dtype=np.int64)
        for i, key in enumerate(keys):
            probs[i] = self._cache[key]
            cached[i] = key not in fresh_set
            slot = self._slots[key]
            num_nodes[i] = self.store.node_count[slot]
            num_edges[i] = self.store.edge_count[slot]
        if not self.cache_scores:
            for key in fresh:
                self._cache.pop(key, None)

        total_s = time.perf_counter() - t0
        obs.count("serve.requests")
        obs.count("serve.pairs", float(len(keys)))
        obs.observe("serve.latency_seconds", total_s)
        return ScoreResult(
            probs=probs,
            predicted=probs.argmax(axis=1),
            class_names=tuple(self.bundle.class_names),
            num_nodes=num_nodes,
            num_edges=num_edges,
            cached=cached,
            timing={
                "extract_s": extract_s,
                "forward_s": forward_s,
                "total_s": total_s,
            },
            request_id=request_id,
        )

    def score_request(self, request: ScoreRequest) -> ScoreOutcome:
        """Serve one typed request, honoring its deadline."""
        if request.expired():
            obs.count("serve.deadline.dropped")
            return Rejected(
                reason="deadline",
                detail="request deadline expired before scoring began",
                request_id=request.request_id,
            )
        return self.score(request.pairs, request_id=request.request_id)

    def cache_info(self) -> Dict[str, int]:
        """Size of the score cache and the backing subgraph store."""
        return {
            "scores": len(self._cache),
            "subgraphs": len(self.store),
            "graph_version": self._graph_version,
            "warm_pairs": len(self._warm),
        }
