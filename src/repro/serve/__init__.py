"""repro.serve — the online link-scoring service (ROADMAP item 1).

The deployment path the paper motivates: a trained AM-DGCNN completing
missing links in a live knowledge graph. Three layers:

* :class:`ModelBundle` — the one-file artifact (weights + architecture
  spec + feature recipe + extraction settings + class names) a server or
  offline caller is constructed from.
* :class:`LinkScorer` — the typed scoring facade
  (:class:`ScoreRequest` → :class:`ScoreResult`), shared by every
  scoring path. Fixed-width forwards and content-keyed extraction
  streams make its probabilities bitwise independent of how requests
  are grouped; a ``(pair, graph_version)`` score cache with explicit
  :meth:`LinkScorer.invalidate` reuses answers until the graph changes.
* :class:`ScoringServer` — an in-process coalescing queue over one
  scorer: micro-batching with admission control (typed
  :class:`Rejected` results, never mid-pipeline exceptions) and
  deadline-based shedding before extraction.

``python -m repro serve`` replays a scripted concurrent workload
through the stack (:mod:`repro.serve.replay`).
"""

from repro.serve.bundle import BUNDLE_VERSION, BundleError, ModelBundle
from repro.serve.scorer import (
    CompatibilityError,
    LinkScorer,
    Rejected,
    ScoreOutcome,
    ScoreRequest,
    ScoreResult,
)
from repro.serve.server import ScoringServer, ServeConfig

__all__ = [
    "BUNDLE_VERSION",
    "BundleError",
    "ModelBundle",
    "CompatibilityError",
    "LinkScorer",
    "ScoreRequest",
    "ScoreResult",
    "ScoreOutcome",
    "Rejected",
    "ScoringServer",
    "ServeConfig",
]
