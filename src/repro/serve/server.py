"""In-process scoring server: coalescing queue + admission control.

:class:`ScoringServer` wraps one :class:`~repro.serve.LinkScorer` behind
a thread-safe submission queue. A single worker thread drains the queue,
drops requests whose deadline already passed (*before* any extraction is
spent on them), concatenates the survivors' pairs into one
:meth:`LinkScorer.score` call — one batched extraction sweep, shared
plan-cache hits, fixed-width forwards — and slices the coalesced result
back into per-request :class:`~repro.serve.ScoreResult` rows. Because
the scorer's forwards are composition-independent, coalescing changes
latency and throughput but never a single bit of any probability.

Admission control is typed, not exceptional: a submit against a full
queue resolves immediately to :class:`~repro.serve.Rejected`
(``reason="queue_full"``), deadline drops resolve to
``reason="deadline"``, and a shutdown flushes the backlog with
``reason="shutdown"`` — callers always get *an* answer.

Requests may be submitted before :meth:`ScoringServer.start`; they queue
up (still subject to the depth cap) and are served once the worker runs.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.serve.scorer import LinkScorer, Rejected, ScoreOutcome, ScoreRequest

__all__ = ["ServeConfig", "ScoringServer"]


@dataclass(frozen=True)
class ServeConfig:
    """Queueing policy of one :class:`ScoringServer`.

    Parameters
    ----------
    max_queue_depth: pending requests admitted before submissions are
        shed with ``Rejected("queue_full")``.
    max_batch_pairs: pair budget of one coalesced scoring call; the
        worker stops draining the queue once the batch holds this many
        pairs (a single oversized request still runs alone).
    batch_window_s: how long the worker lingers for more arrivals after
        picking up the first queued request — the micro-batching window.
    default_deadline_s: latency budget applied to requests submitted
        without an explicit one (``None`` = no deadline).
    """

    max_queue_depth: int = 64
    max_batch_pairs: int = 64
    batch_window_s: float = 0.002
    default_deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.max_batch_pairs < 1:
            raise ValueError("max_batch_pairs must be >= 1")


class ScoringServer:
    """Serve concurrent scoring requests through one shared scorer."""

    def __init__(self, scorer: LinkScorer, config: Optional[ServeConfig] = None):
        self.scorer = scorer
        self.config = config or ServeConfig()
        self._queue: List[Tuple[ScoreRequest, Future]] = []
        self._lock = threading.Lock()
        self._arrived = threading.Condition(self._lock)
        self._worker: Optional[threading.Thread] = None
        self._running = False
        self._closed = False
        self._drain_on_stop = True
        self._peak_depth = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ScoringServer":
        """Launch the worker thread (idempotent until :meth:`stop`)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("server already stopped")
            if self._running:
                return self
            self._running = True
        self._worker = threading.Thread(
            target=self._serve_loop, name="repro-serve", daemon=True
        )
        self._worker.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the worker; flush or reject whatever is still queued.

        With ``drain`` the worker finishes the backlog before exiting;
        without it, queued requests resolve to ``Rejected("shutdown")``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._drain_on_stop = drain
            self._arrived.notify_all()
        if self._worker is not None:
            self._worker.join()
            self._worker = None
        with self._lock:
            leftovers = self._queue
            self._queue = []
        for request, future in leftovers:
            obs.count("serve.rejected")
            future.set_result(
                Rejected(
                    reason="shutdown",
                    detail="server stopped before the request was served",
                    request_id=request.request_id,
                )
            )
        self._running = False

    def __enter__(self) -> "ScoringServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # submission side
    # ------------------------------------------------------------------ #
    def submit(
        self,
        pairs,
        *,
        request_id: Optional[str] = None,
        deadline_s: Optional[float] = None,
    ) -> "Future[ScoreOutcome]":
        """Enqueue a request; returns a future of its typed outcome.

        ``deadline_s`` is a relative latency budget (seconds from now);
        omitted, the config's ``default_deadline_s`` applies. A full
        queue resolves the future immediately with
        ``Rejected("queue_full")`` — admission control never raises.
        """
        budget = deadline_s if deadline_s is not None else self.config.default_deadline_s
        request = ScoreRequest.with_budget(pairs, budget, request_id=request_id)
        future: "Future[ScoreOutcome]" = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("server already stopped")
            if len(self._queue) >= self.config.max_queue_depth:
                obs.count("serve.rejected")
                future.set_result(
                    Rejected(
                        reason="queue_full",
                        detail=(
                            f"queue depth {len(self._queue)} at the "
                            f"{self.config.max_queue_depth} cap"
                        ),
                        request_id=request_id,
                    )
                )
                return future
            self._queue.append((request, future))
            depth = len(self._queue)
            self._peak_depth = max(self._peak_depth, depth)
            obs.gauge("serve.queue.depth", float(depth))
            obs.gauge("serve.queue.peak_depth", float(self._peak_depth))
            self._arrived.notify()
        return future

    def request(
        self,
        pairs,
        *,
        request_id: Optional[str] = None,
        deadline_s: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> ScoreOutcome:
        """Blocking convenience: submit and wait for the outcome."""
        return self.submit(
            pairs, request_id=request_id, deadline_s=deadline_s
        ).result(timeout=timeout)

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def _queued_pairs(self) -> int:
        """Pairs waiting in the queue. Caller must hold the lock."""
        return sum(len(request.pairs) for request, _ in self._queue)

    def _take_batch(self) -> List[Tuple[ScoreRequest, Future]]:
        """Block until work or shutdown; drain up to the pair budget."""
        taken: List[Tuple[ScoreRequest, Future]] = []
        with self._lock:
            while not self._queue and not self._closed:
                self._arrived.wait()
            if not self._queue or (self._closed and not self._drain_on_stop):
                return []
            # Linger so concurrent submitters can join this batch — on
            # the condition variable, not a fixed sleep, so the window
            # ends the moment the pair budget fills or stop() is called
            # (a fixed sleep made every lone submit and every shutdown
            # pay the full window). A closing server skips the linger
            # entirely and drains immediately. All deadline math here
            # and in _serve_batch is time.monotonic.
            window = self.config.batch_window_s
            if window > 0 and not self._closed:
                deadline = time.monotonic() + window
                while (
                    not self._closed
                    and self._queued_pairs() < self.config.max_batch_pairs
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._arrived.wait(remaining)
            budget = self.config.max_batch_pairs
            total = 0
            while self._queue:
                pairs = len(self._queue[0][0].pairs)
                if taken and total + pairs > budget:
                    break
                request, future = self._queue.pop(0)
                taken.append((request, future))
                total += pairs
            obs.gauge("serve.queue.depth", float(len(self._queue)))
        return taken

    def _serve_batch(self, taken: List[Tuple[ScoreRequest, Future]]) -> None:
        # Deadline check happens here — before extraction — so an
        # expired request costs nothing beyond this comparison.
        now = time.monotonic()
        live: List[Tuple[ScoreRequest, Future]] = []
        for request, future in taken:
            if request.expired(now):
                obs.count("serve.deadline.dropped")
                obs.count("serve.rejected")
                future.set_result(
                    Rejected(
                        reason="deadline",
                        detail="deadline expired while queued",
                        request_id=request.request_id,
                    )
                )
            else:
                live.append((request, future))
        if not live:
            return
        obs.count("serve.batches")
        obs.observe("serve.batch.requests", float(len(live)))
        all_pairs = np.concatenate([request.pairs for request, _ in live])
        try:
            combined = self.scorer.score(all_pairs)
        except Exception as exc:  # surface scoring failures per-request
            for _, future in live:
                future.set_exception(exc)
            return
        lo = 0
        for request, future in live:
            hi = lo + len(request.pairs)
            future.set_result(combined.narrow(lo, hi, request_id=request.request_id))
            lo = hi

    def _serve_loop(self) -> None:
        while True:
            taken = self._take_batch()
            if not taken:
                return  # closed and (when draining) queue empty
            self._serve_batch(taken)
