"""``python -m repro serve`` — scripted request-replay against the server.

Builds (or loads) a :class:`~repro.serve.ModelBundle`, stands up a
:class:`~repro.serve.ScoringServer` over a dataset's graph, and replays
a scripted concurrent workload: ``--clients`` threads each firing
``--requests`` queries of ``--pairs`` pairs drawn (with repetition, to
exercise the score cache) from the dataset's link table. The same
workload is then replayed one-request-per-forward against a fresh
scorer — the single-shot baseline — and the report compares the two:

.. code-block:: bash

    python -m repro serve --smoke                    # CI-sized replay
    python -m repro serve --clients 8 --requests 64
    python -m repro serve --save-bundle out/model.npz --json report.json

The two replays assert bitwise-identical probabilities pair for pair
(the scorer's composition-independence guarantee), so the printed
speedup is a like-for-like comparison of identical answers.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

__all__ = ["run_replay", "main"]


def _percentile(values: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(values), q)) if values else 0.0


def run_replay(
    *,
    dataset: str = "primekg",
    scale: float = 0.12,
    num_targets: int = 60,
    epochs: int = 1,
    seed: int = 0,
    bundle_path: Optional[str] = None,
    save_bundle: Optional[str] = None,
    clients: int = 4,
    requests_per_client: int = 8,
    pairs_per_request: int = 4,
    micro_batch: int = 16,
    max_queue_depth: int = 64,
    deadline_ms: Optional[float] = None,
) -> Dict[str, Any]:
    """Run the replay workload; returns the JSON-ready report dict."""
    from repro import obs
    from repro.datasets import load_dataset
    from repro.models import AMDGCNN
    from repro.seal import SEALDataset, TrainConfig, train, train_test_split_indices
    from repro.serve import LinkScorer, ModelBundle, ScoringServer, ServeConfig
    from repro.utils.rng import derive

    task = load_dataset(dataset, scale=scale, rng=seed, num_targets=num_targets)
    if bundle_path is not None:
        bundle = ModelBundle.load(bundle_path)
    else:
        ds = SEALDataset(task, rng=seed)
        model = AMDGCNN(
            ds.feature_width,
            task.num_classes,
            edge_dim=task.edge_attr_dim,
            heads=2,
            hidden_dim=16,
            num_conv_layers=2,
            sort_k=10,
            dropout=0.0,
            rng=derive(seed, "init"),
        )
        tr, _ = train_test_split_indices(
            task.num_links, 0.25, labels=task.labels, rng=derive(seed, "split")
        )
        train(
            model,
            ds,
            tr,
            TrainConfig(epochs=epochs, batch_size=8, lr=3e-3),
            rng=derive(seed, "train"),
            verbose=False,
        )
        bundle = ModelBundle.from_model(
            model, task, extraction_seed=seed, task_name="serve"
        )
    if save_bundle is not None:
        bundle.save(save_bundle)

    # The scripted request tape: pairs drawn with repetition so later
    # requests hit the score cache, as live traffic would.
    gen = np.random.default_rng(derive(seed, "replay").integers(0, 2**31))
    tape: List[np.ndarray] = []
    for _ in range(clients * requests_per_client):
        idx = gen.integers(0, task.num_links, size=pairs_per_request)
        tape.append(task.pairs[idx])

    deadline_s = None if deadline_ms is None else deadline_ms / 1e3

    with obs.capture() as registry:
        scorer = LinkScorer(bundle, task.graph, micro_batch=micro_batch)
        config = ServeConfig(
            max_queue_depth=max_queue_depth, default_deadline_s=deadline_s
        )
        latencies: List[float] = []
        outcomes: List[Any] = [None] * len(tape)
        lat_lock = threading.Lock()

        def client(worker: int) -> None:
            for j in range(requests_per_client):
                slot = worker * requests_per_client + j
                t0 = time.perf_counter()
                outcome = server.request(tape[slot], request_id=f"r{slot}")
                elapsed = time.perf_counter() - t0
                with lat_lock:
                    latencies.append(elapsed)
                    outcomes[slot] = outcome

        t_serve = time.perf_counter()
        with ScoringServer(scorer, config) as server:
            threads = [
                threading.Thread(target=client, args=(w,)) for w in range(clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        serve_wall = time.perf_counter() - t_serve
        snapshot = registry.snapshot()
        lat_hist = registry.histograms.get("serve.latency_seconds")
        occ_hist = registry.histograms.get("serve.batch.occupancy")
        served = [o for o in outcomes if o is not None and o.ok]
        rejected = [o for o in outcomes if o is not None and not o.ok]

    # Single-shot baseline: same tape, one request per scoring call on a
    # fresh scorer (cold store, no coalescing, no cross-request cache).
    base_scorer = LinkScorer(
        bundle, task.graph, micro_batch=micro_batch, cache_scores=False
    )
    base_latencies: List[float] = []
    t_base = time.perf_counter()
    base_results = []
    for pairs in tape:
        t0 = time.perf_counter()
        base_results.append(base_scorer.score(pairs))
        base_latencies.append(time.perf_counter() - t0)
    base_wall = time.perf_counter() - t_base

    # Identical answers, bit for bit — coalescing and caching must never
    # change a probability.
    mismatches = sum(
        1
        for outcome, base in zip(outcomes, base_results)
        if outcome is not None
        and outcome.ok
        and not np.array_equal(outcome.probs, base.probs)
    )

    counters = snapshot["counters"]
    cache_hits = counters.get("serve.cache.hits", 0.0)
    cache_misses = counters.get("serve.cache.misses", 0.0)
    lookups = cache_hits + cache_misses
    return {
        "workload": {
            "dataset": dataset,
            "scale": scale,
            "num_targets": num_targets,
            "clients": clients,
            "requests": len(tape),
            "pairs_per_request": pairs_per_request,
            "micro_batch": micro_batch,
            "bundle": bundle_path or "(trained in-process)",
        },
        "serve": {
            "wall_s": serve_wall,
            "throughput_rps": len(tape) / serve_wall if serve_wall else 0.0,
            "latency_ms": {
                "p50": _percentile(latencies, 50) * 1e3,
                "p99": _percentile(latencies, 99) * 1e3,
            },
            "served": len(served),
            "rejected": len(rejected),
            "deadline_dropped": counters.get("serve.deadline.dropped", 0.0),
            "batches": counters.get("serve.batches", 0.0),
            "batch_occupancy_mean": occ_hist.mean if occ_hist else 0.0,
            "scorer_latency_p99_ms": (
                lat_hist.percentile(99) * 1e3 if lat_hist else 0.0
            ),
            "cache": {
                "hits": cache_hits,
                "misses": cache_misses,
                "hit_rate": cache_hits / lookups if lookups else 0.0,
            },
            "queue_peak_depth": snapshot["gauges"].get("serve.queue.peak_depth", 0.0),
        },
        "single_shot": {
            "wall_s": base_wall,
            "throughput_rps": len(tape) / base_wall if base_wall else 0.0,
            "latency_ms": {
                "p50": _percentile(base_latencies, 50) * 1e3,
                "p99": _percentile(base_latencies, 99) * 1e3,
            },
        },
        "speedup": base_wall / serve_wall if serve_wall else 0.0,
        "bitwise_mismatches": mismatches,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Replay a scripted concurrent workload through the "
        "micro-batching scoring server and report latency/throughput "
        "against a single-shot baseline.",
    )
    parser.add_argument("--dataset", default="primekg", help="dataset loader name")
    parser.add_argument("--scale", type=float, default=0.12, help="node-count multiplier")
    parser.add_argument("--targets", type=int, default=60, help="number of labeled links")
    parser.add_argument("--epochs", type=int, default=1, help="training epochs (no --bundle)")
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument("--bundle", default=None, help="load this ModelBundle .npz")
    parser.add_argument(
        "--save-bundle", default=None, help="write the bundle used to this path"
    )
    parser.add_argument("--clients", type=int, default=4, help="concurrent client threads")
    parser.add_argument("--requests", type=int, default=8, help="requests per client")
    parser.add_argument("--pairs", type=int, default=4, help="pairs per request")
    parser.add_argument("--micro-batch", type=int, default=16, help="fixed forward width")
    parser.add_argument("--queue-depth", type=int, default=64, help="admission cap")
    parser.add_argument(
        "--deadline-ms", type=float, default=None, help="per-request latency budget"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized replay; overrides size flags"
    )
    parser.add_argument("--json", metavar="PATH", help="also write the report to PATH")
    args = parser.parse_args(argv)

    kwargs: Dict[str, Any] = dict(
        dataset=args.dataset,
        scale=args.scale,
        num_targets=args.targets,
        epochs=args.epochs,
        seed=args.seed,
        bundle_path=args.bundle,
        save_bundle=args.save_bundle,
        clients=args.clients,
        requests_per_client=args.requests,
        pairs_per_request=args.pairs,
        micro_batch=args.micro_batch,
        max_queue_depth=args.queue_depth,
        deadline_ms=args.deadline_ms,
    )
    if args.smoke:
        kwargs.update(scale=0.12, num_targets=40, clients=2, requests_per_client=4)

    report = run_replay(**kwargs)

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0 if report["bitwise_mismatches"] == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
