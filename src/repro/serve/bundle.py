"""One-file model artifacts for the scoring service.

A :class:`ModelBundle` is everything a server — or any offline caller —
needs to score links: the trained weights, the model's architecture
spec (class name + constructor kwargs, recovered from the live module),
the :class:`~repro.seal.features.FeatureConfig`, the extraction settings
the model was trained under, and the class names. Saved as a single
``.npz`` through the same atomic meta-npz idiom training checkpoints use
(:func:`repro.seal.checkpoint.write_meta_npz`), so construction goes
from six hand-copied keyword arguments — the old ``classify_pairs``
calling convention, where any mismatch silently produced wrong-width
features — to one file.

The architecture spec is captured, not pickled: a registry maps each
supported classifier to a function that derives its constructor kwargs
back out of the module's own attributes, and ``build_model()``
re-instantiates the class and loads the state dict strictly, so a
round-tripped bundle reproduces the original probabilities exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.nn.module import Module
from repro.seal.checkpoint import read_meta_npz, write_meta_npz
from repro.seal.features import FeatureConfig
from repro.utils.serialization import PathLike

__all__ = ["BUNDLE_VERSION", "BundleError", "ModelBundle"]

BUNDLE_VERSION = 1


class BundleError(ValueError):
    """A bundle is internally inconsistent, unreadable, or unsupported."""


# --------------------------------------------------------------------- #
# architecture capture: live module -> (class name, constructor kwargs)
# --------------------------------------------------------------------- #
def _backbone_kwargs(model: Module) -> Dict[str, Any]:
    """Constructor kwargs every DGCNN-backbone subclass shares.

    Derived from the module's own attributes: the first conv layer holds
    the in/hidden widths, the conv stack length fixes the layer count
    (the extra entry is the 1-wide sort-key layer), and the classifier
    head fixes ``num_classes``.
    """
    return {
        "in_dim": int(model.convs[0].in_dim),
        "num_classes": int(model.lin2.out_features),
        "hidden_dim": int(model.convs[0].out_dim),
        "num_conv_layers": len(model.convs) - 1,
        "sort_k": int(model.sort_k),
        "dropout": float(model.drop.p),
        "center_pool": bool(model.center_pool),
    }


def _capture_vanilla(model: Module) -> Dict[str, Any]:
    return _backbone_kwargs(model)


def _capture_am(model: Module) -> Dict[str, Any]:
    return {
        **_backbone_kwargs(model),
        "edge_dim": int(model.edge_dim),
        "heads": int(model.heads),
        "edge_in_message": bool(model.edge_in_message),
    }


def _capture_gatv2(model: Module) -> Dict[str, Any]:
    return {
        **_backbone_kwargs(model),
        "edge_dim": int(model.edge_dim),
        "heads": int(model.heads),
        "edge_in_message": bool(model.convs[0].edge_in_message),
    }


def _capture_rgcn(model: Module) -> Dict[str, Any]:
    return {
        **_backbone_kwargs(model),
        "num_relations": int(model.num_relations),
        "num_bases": int(model.convs[0].num_bases),
    }


_CAPTURE: Dict[str, Callable[[Module], Dict[str, Any]]] = {
    "VanillaDGCNN": _capture_vanilla,
    "AMDGCNN": _capture_am,
    "GATv2DGCNN": _capture_gatv2,
    "RGCNDGCNN": _capture_rgcn,
}


def _model_classes() -> Dict[str, type]:
    # Deferred so importing repro.serve does not pull the model zoo in.
    from repro.models import AMDGCNN, GATv2DGCNN, RGCNDGCNN, VanillaDGCNN

    return {
        "VanillaDGCNN": VanillaDGCNN,
        "AMDGCNN": AMDGCNN,
        "GATv2DGCNN": GATv2DGCNN,
        "RGCNDGCNN": RGCNDGCNN,
    }


@dataclass
class ModelBundle:
    """A trained link classifier plus everything needed to serve it.

    Attributes
    ----------
    model_class: registry name of the classifier (e.g. ``"AMDGCNN"``).
    model_kwargs: constructor kwargs that rebuild the architecture.
    model_state: trained parameter arrays (``state_dict`` layout).
    feature_config: node-attribute recipe the model was trained under.
    num_classes: label-space size, always equal to the model head width.
    class_names: human-readable class names (len == ``num_classes``).
    num_hops / subgraph_mode / max_subgraph_nodes / edge_attr_dim:
        extraction settings of the training task.
    extraction_seed: seed material for the per-pair extraction streams.
    task_name: dataset name baked into the extraction stream key.
    compute_dtype: precision policy the scorer should serve under
        (``"float64"`` or ``"float32"``). Recorded at save time; bundles
        written before the policy existed load as ``"float64"``.
    """

    model_class: str
    model_kwargs: Dict[str, Any]
    model_state: Dict[str, np.ndarray]
    feature_config: FeatureConfig
    num_classes: int
    class_names: List[str] = field(default_factory=list)
    num_hops: int = 2
    subgraph_mode: str = "union"
    max_subgraph_nodes: Optional[int] = 100
    edge_attr_dim: int = 0
    extraction_seed: int = 0
    task_name: str = "serve"
    compute_dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.model_class not in _CAPTURE:
            raise BundleError(
                f"unknown model class {self.model_class!r}; bundles support "
                f"{sorted(_CAPTURE)}"
            )
        head = int(self.model_kwargs.get("num_classes", self.num_classes))
        if head != self.num_classes:
            raise BundleError(
                f"bundle num_classes {self.num_classes} != model output head "
                f"width {head}"
            )
        if not self.class_names:
            self.class_names = [f"class_{c}" for c in range(self.num_classes)]
        if len(self.class_names) != self.num_classes:
            raise BundleError(
                f"{len(self.class_names)} class names for {self.num_classes} classes"
            )
        if self.model_kwargs.get("in_dim") != self.feature_config.width:
            raise BundleError(
                f"model input width {self.model_kwargs.get('in_dim')} != "
                f"feature config width {self.feature_config.width}"
            )
        from repro.nn.dtype import resolve_dtype

        try:
            resolve_dtype(self.compute_dtype)
        except ValueError as exc:
            raise BundleError(str(exc))

    # ------------------------------------------------------------------ #
    # construction from a live model
    # ------------------------------------------------------------------ #
    @classmethod
    def from_model(
        cls,
        model: Module,
        task=None,
        *,
        feature_config: Optional[FeatureConfig] = None,
        class_names: Optional[Sequence[str]] = None,
        num_hops: Optional[int] = None,
        subgraph_mode: Optional[str] = None,
        max_subgraph_nodes: Union[int, None, str] = "unset",
        edge_attr_dim: Optional[int] = None,
        extraction_seed: int = 0,
        task_name: Optional[str] = None,
        compute_dtype: str = "float64",
    ) -> "ModelBundle":
        """Capture ``model`` (and optionally its training ``task``) as a bundle.

        The class count is derived from the model's output head — never
        from a label array — and, when ``task`` is given, validated
        against the task's label space. Extraction/feature settings come
        from ``task`` unless overridden by the keyword arguments.
        """
        name = type(model).__name__
        capture = _CAPTURE.get(name)
        if capture is None:
            raise BundleError(
                f"cannot bundle a {name}; supported classes: {sorted(_CAPTURE)}"
            )
        head = int(model.lin2.out_features)
        if task is not None and int(task.num_classes) != head:
            raise BundleError(
                f"task declares {task.num_classes} classes but the model head "
                f"is {head} wide"
            )
        if feature_config is None:
            if task is None:
                raise BundleError("need a task or an explicit feature_config")
            feature_config = task.feature_config
        defaults = {
            "class_names": list(task.class_names) if task is not None else [],
            "num_hops": task.num_hops if task is not None else 2,
            "subgraph_mode": task.subgraph_mode if task is not None else "union",
            "max_subgraph_nodes": task.max_subgraph_nodes if task is not None else 100,
            "edge_attr_dim": task.edge_attr_dim if task is not None else 0,
            "task_name": task.name if task is not None else "serve",
        }
        return cls(
            model_class=name,
            model_kwargs=capture(model),
            model_state=model.state_dict(),
            feature_config=feature_config,
            num_classes=head,
            class_names=list(class_names) if class_names is not None else defaults["class_names"],
            num_hops=num_hops if num_hops is not None else defaults["num_hops"],
            subgraph_mode=subgraph_mode if subgraph_mode is not None else defaults["subgraph_mode"],
            max_subgraph_nodes=(
                defaults["max_subgraph_nodes"]
                if max_subgraph_nodes == "unset"
                else max_subgraph_nodes
            ),
            edge_attr_dim=edge_attr_dim if edge_attr_dim is not None else defaults["edge_attr_dim"],
            extraction_seed=extraction_seed,
            task_name=task_name if task_name is not None else defaults["task_name"],
            compute_dtype=compute_dtype,
        )

    def build_model(self) -> Module:
        """Re-instantiate the architecture and load the trained weights.

        ``load_state_dict`` is strict about keys and shapes, so a bundle
        whose spec and weights disagree fails loudly here rather than
        producing silently wrong scores.
        """
        model_cls = _model_classes()[self.model_class]
        kwargs = dict(self.model_kwargs)
        in_dim = kwargs.pop("in_dim")
        num_classes = kwargs.pop("num_classes")
        model = model_cls(in_dim, num_classes, rng=0, **kwargs)
        model.load_state_dict(self.model_state)
        model.eval()
        return model

    # ------------------------------------------------------------------ #
    # persistence (atomic meta-npz, like training checkpoints)
    # ------------------------------------------------------------------ #
    def save(self, path: PathLike):
        """Write the bundle to ``path`` atomically; returns the final path."""
        arrays = {
            f"model:{name}": np.asarray(arr)
            for name, arr in self.model_state.items()
        }
        fc = self.feature_config
        if fc.embeddings is not None:
            arrays["feature:embeddings"] = np.asarray(fc.embeddings)
        meta = {
            "version": BUNDLE_VERSION,
            "kind": "model-bundle",
            "model_class": self.model_class,
            "model_kwargs": self.model_kwargs,
            "num_classes": self.num_classes,
            "class_names": list(self.class_names),
            "feature_config": {
                "num_node_types": fc.num_node_types,
                "use_drnl": fc.use_drnl,
                "max_drnl_label": fc.max_drnl_label,
                "explicit_dim": fc.explicit_dim,
            },
            "extraction": {
                "num_hops": self.num_hops,
                "subgraph_mode": self.subgraph_mode,
                "max_subgraph_nodes": self.max_subgraph_nodes,
                "edge_attr_dim": self.edge_attr_dim,
                "seed": self.extraction_seed,
                "task_name": self.task_name,
            },
            "compute_dtype": self.compute_dtype,
        }
        return write_meta_npz(path, arrays, meta)

    @classmethod
    def load(cls, path: PathLike) -> "ModelBundle":
        """Read a bundle written by :meth:`save`."""
        try:
            arrays, meta = read_meta_npz(path)
        except ValueError as exc:
            raise BundleError(str(exc))
        if meta.get("kind") != "model-bundle":
            raise BundleError(f"{path} is not a model bundle")
        version = meta.get("version")
        if version != BUNDLE_VERSION:
            raise BundleError(
                f"bundle version {version} unsupported "
                f"(this build reads version {BUNDLE_VERSION})"
            )
        model_state = {
            key[len("model:"):]: arr
            for key, arr in arrays.items()
            if key.startswith("model:")
        }
        fc_meta = meta["feature_config"]
        feature_config = FeatureConfig(
            num_node_types=int(fc_meta["num_node_types"]),
            use_drnl=bool(fc_meta["use_drnl"]),
            max_drnl_label=int(fc_meta["max_drnl_label"]),
            explicit_dim=int(fc_meta["explicit_dim"]),
            embeddings=arrays.get("feature:embeddings"),
        )
        ext = meta["extraction"]
        return cls(
            model_class=meta["model_class"],
            model_kwargs=meta["model_kwargs"],
            model_state=model_state,
            feature_config=feature_config,
            num_classes=int(meta["num_classes"]),
            class_names=list(meta["class_names"]),
            num_hops=int(ext["num_hops"]),
            subgraph_mode=ext["subgraph_mode"],
            max_subgraph_nodes=(
                None if ext["max_subgraph_nodes"] is None else int(ext["max_subgraph_nodes"])
            ),
            edge_attr_dim=int(ext["edge_attr_dim"]),
            extraction_seed=int(ext["seed"]),
            task_name=ext["task_name"],
            # Bundles written before the dtype policy load as float64.
            compute_dtype=str(meta.get("compute_dtype", "float64")),
        )
