"""Heuristic-feature link classifier (the related-work baseline, §VI-A).

Builds a feature vector of topology heuristics (plus optional endpoint
node features) per link and fits a multinomial logistic-regression
classifier — the decision-tree/LR paradigm of Katragadda et al. and
Vasavada et al. that the paper argues supervised heuristic *learning*
supersedes. Serves as the classical baseline in the benchmark suite.

The logistic regression is trained with full-batch gradient descent on
the library's own autograd (no sklearn in the environment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.graph.structure import Graph
from repro.heuristics.local import LOCAL_HEURISTICS, graph_without_pairs
from repro.nn.dense import Linear
from repro.nn.losses import cross_entropy
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import RngLike

__all__ = ["HeuristicFeaturizer", "HeuristicLinkClassifier"]

DEFAULT_HEURISTICS = (
    "common_neighbors",
    "jaccard",
    "adamic_adar",
    "resource_allocation",
    "preferential_attachment",
)


class HeuristicFeaturizer:
    """Per-link heuristic feature extraction.

    Parameters
    ----------
    heuristics: names from :data:`repro.heuristics.local.LOCAL_HEURISTICS`.
    include_node_features: append both endpoints' explicit feature rows.
    log_scale: apply ``log1p`` to unbounded scores (CN, PA) so LR weights
        stay well-conditioned.
    """

    def __init__(
        self,
        heuristics: Sequence[str] = DEFAULT_HEURISTICS,
        include_node_features: bool = True,
        log_scale: bool = True,
    ):
        unknown = [h for h in heuristics if h not in LOCAL_HEURISTICS]
        if unknown:
            raise KeyError(f"unknown heuristics: {unknown}")
        self.heuristics = list(heuristics)
        self.include_node_features = include_node_features
        self.log_scale = log_scale

    def transform(self, graph: Graph, pairs: np.ndarray) -> np.ndarray:
        """Feature matrix ``(M, F)`` for the given pairs."""
        pairs = np.asarray(pairs, dtype=np.int64)
        cols: List[np.ndarray] = []
        for name in self.heuristics:
            scores = LOCAL_HEURISTICS[name](graph, pairs)
            if self.log_scale:
                scores = np.log1p(np.maximum(scores, 0.0))
            cols.append(scores[:, None])
        if self.include_node_features and graph.node_features is not None:
            cols.append(graph.node_features[pairs[:, 0]])
            cols.append(graph.node_features[pairs[:, 1]])
        return np.concatenate(cols, axis=1)


@dataclass
class _FitState:
    mean: np.ndarray
    std: np.ndarray


class HeuristicLinkClassifier:
    """Multinomial logistic regression over heuristic link features.

    ``remove_target_links=True`` (default) strips every scored pair's own
    edge from the graph before computing features — the heuristic
    analogue of SEAL's leakage guard (a pair's direct edge is the label,
    not a feature).
    """

    def __init__(
        self,
        num_classes: int,
        featurizer: Optional[HeuristicFeaturizer] = None,
        lr: float = 0.1,
        epochs: int = 300,
        weight_decay: float = 1e-4,
        remove_target_links: bool = True,
        rng: RngLike = 0,
    ):
        if num_classes < 2:
            raise ValueError("need at least two classes")
        self.num_classes = num_classes
        self.featurizer = featurizer or HeuristicFeaturizer()
        self.lr = lr
        self.epochs = epochs
        self.weight_decay = weight_decay
        self.remove_target_links = remove_target_links
        self.rng = rng
        self.linear: Optional[Linear] = None
        self._state: Optional[_FitState] = None

    def _featurize(self, graph: Graph, pairs: np.ndarray) -> np.ndarray:
        if self.remove_target_links:
            graph = graph_without_pairs(graph, pairs)
        return self.featurizer.transform(graph, pairs)

    def fit(self, graph: Graph, pairs: np.ndarray, labels: np.ndarray) -> "HeuristicLinkClassifier":
        """Fit on training links; returns self."""
        x = self._featurize(graph, pairs)
        labels = np.asarray(labels, dtype=np.int64)
        mean = x.mean(axis=0)
        std = x.std(axis=0)
        std[std < 1e-9] = 1.0
        self._state = _FitState(mean, std)
        xn = (x - mean) / std

        self.linear = Linear(xn.shape[1], self.num_classes, rng=self.rng)
        opt = Adam(self.linear.parameters(), lr=self.lr, weight_decay=self.weight_decay)
        xt = Tensor(xn)
        for _ in range(self.epochs):
            opt.zero_grad()
            loss = cross_entropy(self.linear(xt), labels)
            loss.backward()
            opt.step()
        return self

    def predict_proba(self, graph: Graph, pairs: np.ndarray) -> np.ndarray:
        """Class probabilities ``(M, C)``."""
        if self.linear is None or self._state is None:
            raise RuntimeError("classifier is not fitted")
        x = self._featurize(graph, pairs)
        xn = (x - self._state.mean) / self._state.std
        with no_grad():
            logits = self.linear(Tensor(xn)).data
        logits = logits - logits.max(axis=1, keepdims=True)
        expd = np.exp(logits)
        return expd / expd.sum(axis=1, keepdims=True)

    def predict(self, graph: Graph, pairs: np.ndarray) -> np.ndarray:
        """Argmax class ids."""
        return self.predict_proba(graph, pairs).argmax(axis=1)
