"""High-order (γ-decaying) link heuristics: Katz, PageRank, SimRank.

These are the high-order heuristics the SEAL theory shows are
approximable from local enclosing subgraphs (paper §II-B). Implemented on
scipy.sparse adjacency for the pair-scoring interface shared with
:mod:`repro.heuristics.local`.
"""

from __future__ import annotations

from typing import Dict, Callable

import numpy as np
import scipy.sparse as sp

from repro.graph.structure import Graph

__all__ = ["katz_index", "rooted_pagerank", "simrank", "GLOBAL_HEURISTICS"]


def _adjacency(graph: Graph) -> sp.csr_matrix:
    src, dst = graph.edge_index
    n = graph.num_nodes
    a = sp.coo_matrix((np.ones(len(src)), (src, dst)), shape=(n, n))
    a = a.tocsr()
    a.data[:] = 1.0  # collapse multi-arcs
    return a


def katz_index(
    graph: Graph,
    pairs: np.ndarray,
    beta: float = 0.005,
    max_power: int = 6,
) -> np.ndarray:
    """Truncated Katz index ``Σ_l β^l (A^l)_{uv}`` for each pair.

    ``β`` must be below ``1/λ_max`` for the full series to converge; the
    truncation at ``max_power`` keeps the computation exact per term and
    is itself a γ-decaying approximation (paper §II-B).
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    pairs = np.asarray(pairs, dtype=np.int64)
    a = _adjacency(graph)
    # Iterate scores column-block-wise from the unique source nodes.
    sources, inverse = np.unique(pairs[:, 0], return_inverse=True)
    # walk[s] starts as e_s^T A and accumulates beta^l A^l rows.
    basis = sp.coo_matrix(
        (np.ones(len(sources)), (np.arange(len(sources)), sources)),
        shape=(len(sources), graph.num_nodes),
    ).tocsr()
    walk = basis @ a
    scores_rows = beta * walk.toarray()
    factor = beta
    for _ in range(1, max_power):
        walk = walk @ a
        factor *= beta
        scores_rows += factor * walk.toarray()
    return scores_rows[inverse, pairs[:, 1]]


def rooted_pagerank(
    graph: Graph,
    pairs: np.ndarray,
    alpha: float = 0.85,
    iters: int = 50,
) -> np.ndarray:
    """Rooted (personalized) PageRank score ``π_u[v] + π_v[u]``.

    Power iteration on the column-stochastic transition matrix with
    restart probability ``1 - alpha`` at the root. The symmetric sum is
    the usual link-prediction variant.
    """
    if not 0 < alpha < 1:
        raise ValueError("alpha must be in (0, 1)")
    pairs = np.asarray(pairs, dtype=np.int64)
    a = _adjacency(graph)
    deg = np.asarray(a.sum(axis=1)).ravel()
    inv_deg = np.divide(1.0, deg, out=np.zeros_like(deg), where=deg > 0)
    trans = sp.diags(inv_deg) @ a  # row-stochastic (dangling rows zero)

    roots = np.unique(pairs.ravel())
    restart = np.zeros((len(roots), graph.num_nodes))
    restart[np.arange(len(roots)), roots] = 1.0
    pi = restart.copy()
    for _ in range(iters):
        # pi_{t+1} = alpha * pi_t P + (1-alpha) e_root, rows batched.
        pi = alpha * (trans.T @ pi.T).T + (1 - alpha) * restart
    lookup = {int(r): i for i, r in enumerate(roots)}
    u_idx = np.array([lookup[int(u)] for u in pairs[:, 0]])
    v_idx = np.array([lookup[int(v)] for v in pairs[:, 1]])
    return pi[u_idx, pairs[:, 1]] + pi[v_idx, pairs[:, 0]]


def simrank(
    graph: Graph,
    pairs: np.ndarray,
    c: float = 0.8,
    iters: int = 5,
) -> np.ndarray:
    """SimRank similarity (Jeh & Widom, 2002) via full-matrix iteration.

    ``S = max(c · P^T S P, I)`` with ``P`` the column-normalized
    adjacency. O(n²) memory — intended for the small graphs used in
    tests/benchmarks (the γ-decaying theory says the GNN approximates it
    from local subgraphs anyway).
    """
    if not 0 < c < 1:
        raise ValueError("c must be in (0, 1)")
    n = graph.num_nodes
    if n > 3000:
        raise ValueError("simrank is O(n^2); graph too large")
    a = _adjacency(graph).toarray()
    deg = a.sum(axis=0)
    p = np.divide(a, deg, out=np.zeros_like(a), where=deg > 0)  # column-normalized
    s = np.eye(n)
    for _ in range(iters):
        s = c * (p.T @ s @ p)
        np.fill_diagonal(s, 1.0)
    pairs = np.asarray(pairs, dtype=np.int64)
    return s[pairs[:, 0], pairs[:, 1]]


GLOBAL_HEURISTICS: Dict[str, Callable[[Graph, np.ndarray], np.ndarray]] = {
    "katz": katz_index,
    "rooted_pagerank": rooted_pagerank,
    "simrank": simrank,
}
