"""Classical link heuristics and the heuristic-feature baseline classifier."""

from repro.heuristics.classifier import HeuristicFeaturizer, HeuristicLinkClassifier
from repro.heuristics.global_ import (
    GLOBAL_HEURISTICS,
    katz_index,
    rooted_pagerank,
    simrank,
)
from repro.heuristics.local import (
    LOCAL_HEURISTICS,
    graph_without_pairs,
    adamic_adar,
    common_neighbors,
    jaccard_coefficient,
    preferential_attachment,
    resource_allocation,
)

__all__ = [
    "common_neighbors",
    "jaccard_coefficient",
    "adamic_adar",
    "resource_allocation",
    "preferential_attachment",
    "LOCAL_HEURISTICS",
    "graph_without_pairs",
    "katz_index",
    "rooted_pagerank",
    "simrank",
    "GLOBAL_HEURISTICS",
    "HeuristicFeaturizer",
    "HeuristicLinkClassifier",
]
