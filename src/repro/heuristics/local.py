"""First- and second-order link heuristics (paper §I, §VI-A).

Classical topology scores for a node pair, used as the heuristic-baseline
comparators the paper's related work discusses: common neighbors, Jaccard
coefficient, Adamic–Adar index, preferential attachment, and resource
allocation. All operate on the symmetric arc list through the cached CSR
and are vectorized over batches of pairs.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.nn.dtype import FLOAT64

from repro.graph.structure import Graph

__all__ = [
    "neighbor_sets",
    "graph_without_pairs",
    "common_neighbors",
    "jaccard_coefficient",
    "adamic_adar",
    "preferential_attachment",
    "resource_allocation",
    "LOCAL_HEURISTICS",
]


def graph_without_pairs(graph: Graph, pairs: np.ndarray) -> Graph:
    """A copy of ``graph`` with every arc between the given pairs removed.

    The heuristic-baseline analogue of SEAL's leakage guard: when scoring
    whether/how ``(u, v)`` are related, any direct ``u–v`` edge must not
    be visible to the scorer (it *is* the label). Removes both directions
    and all multiplicities for every listed pair.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return graph
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError("pairs must have shape (M, 2)")
    n = graph.num_nodes
    src, dst = graph.edge_index
    arc_keys = np.minimum(src, dst) * n + np.maximum(src, dst)
    pair_keys = np.minimum(pairs[:, 0], pairs[:, 1]) * n + np.maximum(
        pairs[:, 0], pairs[:, 1]
    )
    mask = np.isin(arc_keys, pair_keys)
    return graph.without_edges(mask) if mask.any() else graph


def neighbor_sets(graph: Graph) -> list:
    """Out-neighbor sets per node (Python sets — built once per graph)."""
    indptr, indices, _ = graph.csr()
    return [set(indices[indptr[v] : indptr[v + 1]].tolist()) for v in range(graph.num_nodes)]


def _pairwise(
    graph: Graph,
    pairs: np.ndarray,
    score_fn: Callable[[set, set, np.ndarray], float],
) -> np.ndarray:
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError("pairs must have shape (M, 2)")
    nbrs = neighbor_sets(graph)
    deg = graph.degree().astype(FLOAT64)
    out = np.empty(len(pairs), dtype=FLOAT64)
    for i, (u, v) in enumerate(pairs):
        out[i] = score_fn(nbrs[int(u)], nbrs[int(v)], deg)
    return out


def common_neighbors(graph: Graph, pairs: np.ndarray) -> np.ndarray:
    """``|Γ(u) ∩ Γ(v)|`` for each pair."""
    return _pairwise(graph, pairs, lambda a, b, d: float(len(a & b)))


def jaccard_coefficient(graph: Graph, pairs: np.ndarray) -> np.ndarray:
    """``|Γ(u) ∩ Γ(v)| / |Γ(u) ∪ Γ(v)|`` (0 when both are isolated)."""

    def score(a: set, b: set, d: np.ndarray) -> float:
        union = len(a | b)
        return float(len(a & b)) / union if union else 0.0

    return _pairwise(graph, pairs, score)


def adamic_adar(graph: Graph, pairs: np.ndarray) -> np.ndarray:
    """``Σ_{w ∈ Γ(u) ∩ Γ(v)} 1 / log deg(w)`` (Adamic & Adar, 2003).

    Common neighbors of degree ≤ 1 cannot occur (they would not be common
    neighbors); degree exactly e is guarded to avoid division by ~0.
    """

    def score(a: set, b: set, d: np.ndarray) -> float:
        total = 0.0
        for w in a & b:
            dw = d[w]
            if dw > 1:
                total += 1.0 / np.log(dw)
        return total

    return _pairwise(graph, pairs, score)


def resource_allocation(graph: Graph, pairs: np.ndarray) -> np.ndarray:
    """``Σ_{w ∈ Γ(u) ∩ Γ(v)} 1 / deg(w)`` (Zhou et al., 2009)."""

    def score(a: set, b: set, d: np.ndarray) -> float:
        return float(sum(1.0 / d[w] for w in a & b if d[w] > 0))

    return _pairwise(graph, pairs, score)


def preferential_attachment(graph: Graph, pairs: np.ndarray) -> np.ndarray:
    """``deg(u) · deg(v)`` (Newman, 2001)."""
    pairs = np.asarray(pairs, dtype=np.int64)
    deg = graph.degree().astype(FLOAT64)
    return deg[pairs[:, 0]] * deg[pairs[:, 1]]


LOCAL_HEURISTICS: Dict[str, Callable[[Graph, np.ndarray], np.ndarray]] = {
    "common_neighbors": common_neighbors,
    "jaccard": jaccard_coefficient,
    "adamic_adar": adamic_adar,
    "resource_allocation": resource_allocation,
    "preferential_attachment": preferential_attachment,
}
